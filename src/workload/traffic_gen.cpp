#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <cassert>

#include "transport/flow.hpp"

namespace pet::workload {

// ---------------------------------------------------------------------------
// PoissonTrafficGenerator
// ---------------------------------------------------------------------------

PoissonTrafficGenerator::PoissonTrafficGenerator(
    sim::Scheduler& sched, transport::RdmaTransport& transport,
    PoissonTrafficConfig cfg)
    : sched_(sched),
      transport_(transport),
      cfg_(std::move(cfg)),
      rng_(sim::derive_seed(cfg_.seed, "poisson-traffic")) {
  assert(cfg_.hosts.size() >= 2);
  assert(cfg_.sizes.valid());
  assert(cfg_.load > 0.0);
}

double PoissonTrafficGenerator::arrival_rate_per_sec() const {
  const double aggregate_bps = static_cast<double>(cfg_.host_rate.bps()) *
                               static_cast<double>(cfg_.hosts.size());
  const double mean_bits = cfg_.sizes.mean() * 8.0;
  return cfg_.load * aggregate_bps / mean_bits;
}

void PoissonTrafficGenerator::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void PoissonTrafficGenerator::stop() {
  running_ = false;
  if (next_ev_.valid()) {
    sched_.cancel(next_ev_);
    next_ev_ = sim::EventId{};
  }
}

void PoissonTrafficGenerator::set_sizes(EmpiricalCdf sizes) {
  assert(sizes.valid());
  cfg_.sizes = std::move(sizes);
  // The arrival rate depends on the mean size; the next gap uses it.
}

void PoissonTrafficGenerator::set_load(double load) {
  assert(load > 0.0);
  cfg_.load = load;
}

void PoissonTrafficGenerator::schedule_next() {
  if (!running_ || sched_.now() >= cfg_.stop) return;
  const double gap_sec = rng_.exponential(1.0 / arrival_rate_per_sec());
  next_ev_ = sched_.schedule_in(sim::seconds(gap_sec), [this] { arrival(); },
                                "workload.arrival");
}

void PoissonTrafficGenerator::arrival() {
  next_ev_ = sim::EventId{};
  if (!running_ || sched_.now() >= cfg_.stop) return;
  const auto n = cfg_.hosts.size();
  const auto src_idx = rng_.uniform_int(n);
  auto dst_idx = rng_.uniform_int(n - 1);
  if (dst_idx >= src_idx) ++dst_idx;

  transport::FlowSpec spec;
  spec.src = cfg_.hosts[src_idx];
  spec.dst = cfg_.hosts[dst_idx];
  spec.size_bytes =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(cfg_.sizes.sample(rng_)));
  transport_.start_flow(spec);
  ++flows_generated_;
  schedule_next();
}

// ---------------------------------------------------------------------------
// IncastGenerator
// ---------------------------------------------------------------------------

IncastGenerator::IncastGenerator(sim::Scheduler& sched,
                                 transport::RdmaTransport& transport,
                                 IncastConfig cfg)
    : sched_(sched),
      transport_(transport),
      cfg_(std::move(cfg)),
      rng_(sim::derive_seed(cfg_.seed, "incast")) {
  // An epoch needs the aggregator plus fan_in distinct senders.
  cfg_.fan_in = std::min<std::int32_t>(
      cfg_.fan_in, static_cast<std::int32_t>(cfg_.hosts.size()) - 1);
  assert(cfg_.fan_in >= 1);
}

void IncastGenerator::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void IncastGenerator::stop() {
  running_ = false;
  if (next_ev_.valid()) {
    sched_.cancel(next_ev_);
    next_ev_ = sim::EventId{};
  }
}

void IncastGenerator::schedule_next() {
  if (!running_ || sched_.now() >= cfg_.stop) return;
  // Jitter the period slightly so epochs do not phase-lock with tuning
  // intervals.
  const double jitter = rng_.uniform(0.9, 1.1);
  const auto gap = sim::Time(
      static_cast<std::int64_t>(static_cast<double>(cfg_.period.ps()) * jitter));
  next_ev_ =
      sched_.schedule_in(gap, [this] { fire_epoch(); }, "workload.incast");
}

void IncastGenerator::fire_epoch() {
  next_ev_ = sim::EventId{};
  if (!running_ || sched_.now() >= cfg_.stop) return;
  ++epochs_;

  // Partial Fisher-Yates over a scratch copy: aggregator + fan_in senders.
  std::vector<net::HostId> pool = cfg_.hosts;
  const auto pick = [&](std::size_t i) {
    const std::size_t j = i + rng_.uniform_int(pool.size() - i);
    std::swap(pool[i], pool[j]);
    return pool[i];
  };
  const net::HostId aggregator = pick(0);
  for (std::int32_t s = 0; s < cfg_.fan_in; ++s) {
    const net::HostId sender = pick(static_cast<std::size_t>(s) + 1);
    transport::FlowSpec spec;
    spec.src = sender;
    spec.dst = aggregator;
    spec.size_bytes = cfg_.request_bytes;
    transport_.start_flow(spec);
  }
  schedule_next();
}

}  // namespace pet::workload
