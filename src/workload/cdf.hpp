#pragma once
// Empirical CDF over flow sizes with piecewise-linear inverse-transform
// sampling — the representation used by the Alibaba traffic generator's
// distribution files that the paper's workloads come from.

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace pet::workload {

class EmpiricalCdf {
 public:
  /// Points must be appended with non-decreasing value and strictly
  /// increasing cumulative probability ending at 1.0.
  void add_point(double value, double cum_prob);

  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::size_t num_points() const { return points_.size(); }

  /// Inverse-transform sample (linear interpolation between points).
  [[nodiscard]] double sample(sim::Rng& rng) const;

  /// Value at cumulative probability p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// Expectation of the piecewise-linear distribution.
  [[nodiscard]] double mean() const;

  /// A copy truncated at `max_value` (mass above collapses onto the cap);
  /// used to keep tail flows finishable in scaled-down simulations.
  [[nodiscard]] EmpiricalCdf truncated(double max_value) const;

 private:
  struct Point {
    double value;
    double cum_prob;
  };
  std::vector<Point> points_;
};

}  // namespace pet::workload
