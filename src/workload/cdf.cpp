#include "workload/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pet::workload {

void EmpiricalCdf::add_point(double value, double cum_prob) {
  assert(cum_prob >= 0.0 && cum_prob <= 1.0);
  if (!points_.empty()) {
    assert(value >= points_.back().value);
    assert(cum_prob > points_.back().cum_prob);
  }
  points_.push_back(Point{value, cum_prob});
}

bool EmpiricalCdf::valid() const {
  return !points_.empty() &&
         std::abs(points_.back().cum_prob - 1.0) < 1e-12;
}

double EmpiricalCdf::quantile(double p) const {
  assert(valid());
  p = std::clamp(p, 0.0, 1.0);
  if (p <= points_.front().cum_prob) return points_.front().value;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (p <= points_[i].cum_prob) {
      const Point& lo = points_[i - 1];
      const Point& hi = points_[i];
      const double t = (p - lo.cum_prob) / (hi.cum_prob - lo.cum_prob);
      return lo.value + t * (hi.value - lo.value);
    }
  }
  return points_.back().value;
}

double EmpiricalCdf::sample(sim::Rng& rng) const {
  return quantile(rng.uniform());
}

double EmpiricalCdf::mean() const {
  assert(valid());
  // First segment carries points_[0].cum_prob mass at points_[0].value
  // (an atom); each following segment is uniform between its endpoints.
  double m = points_.front().value * points_.front().cum_prob;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    m += (hi.cum_prob - lo.cum_prob) * 0.5 * (lo.value + hi.value);
  }
  return m;
}

EmpiricalCdf EmpiricalCdf::truncated(double max_value) const {
  assert(valid());
  EmpiricalCdf out;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (p.value < max_value) {
      out.add_point(p.value, std::min(p.cum_prob, 1.0 - 1e-12));
      continue;
    }
    // Interpolate the probability at the cap, then close the CDF there.
    double cap_prob = 1.0;
    if (i > 0) {
      const Point& lo = points_[i - 1];
      const double t = (max_value - lo.value) / (p.value - lo.value);
      cap_prob = lo.cum_prob + t * (p.cum_prob - lo.cum_prob);
    }
    (void)cap_prob;  // mass above the cap collapses onto the cap value
    out.add_point(max_value, 1.0);
    return out;
  }
  return out;
}

}  // namespace pet::workload
