#include "rl/ppo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "rl/categorical.hpp"
#include "rl/gae.hpp"

namespace pet::rl {

PpoAgent::PpoAgent(const PpoConfig& cfg)
    : cfg_(cfg),
      init_rng_(sim::derive_seed(cfg.seed, "ppo-init")),
      critic_([&] {
        std::vector<std::int32_t> sizes{cfg.input_size};
        sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
        sizes.push_back(1);
        return Mlp(sizes, Activation::kTanh, init_rng_);
      }()),
      shuffle_rng_(sim::derive_seed(cfg.seed, "ppo-shuffle")) {
  assert(cfg.input_size > 0 && !cfg.head_sizes.empty());
  actor_heads_.reserve(cfg.head_sizes.size());
  for (const std::int32_t n : cfg.head_sizes) {
    std::vector<std::int32_t> sizes{cfg.input_size};
    sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
    sizes.push_back(n);
    actor_heads_.emplace_back(sizes, Activation::kTanh, init_rng_);
  }
  for (auto& head : actor_heads_) head.collect(actor_refs_);
  critic_.collect(critic_refs_);
  refs_ = actor_refs_;
  refs_.params.insert(refs_.params.end(), critic_refs_.params.begin(),
                      critic_refs_.params.end());
  refs_.grads.insert(refs_.grads.end(), critic_refs_.grads.begin(),
                     critic_refs_.grads.end());
  actor_opt_ = std::make_unique<Adam>(
      actor_refs_,
      AdamConfig{.lr = cfg.actor_lr, .max_grad_norm = cfg.max_grad_norm});
  critic_opt_ = std::make_unique<Adam>(
      critic_refs_,
      AdamConfig{.lr = cfg.critic_lr, .max_grad_norm = cfg.max_grad_norm});
}

void PpoAgent::head_logits(std::span<const double> state,
                           std::vector<std::vector<double>>& logits,
                           std::vector<Mlp::Cache>* caches) const {
  logits.resize(actor_heads_.size());
  if (caches != nullptr) caches->resize(actor_heads_.size());
  for (std::size_t h = 0; h < actor_heads_.size(); ++h) {
    logits[h] = actor_heads_[h].forward(
        state, caches != nullptr ? &(*caches)[h] : nullptr);
  }
}

PpoAgent::ActResult PpoAgent::act(std::span<const double> state,
                                  sim::Rng& rng) {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  ActResult out;
  out.actions.resize(logits.size());
  for (std::size_t h = 0; h < logits.size(); ++h) {
    const std::vector<double> probs = softmax(logits[h]);
    std::int32_t a;
    if (exploration_rate_ > 0.0 && rng.bernoulli(exploration_rate_)) {
      a = static_cast<std::int32_t>(rng.uniform_int(probs.size()));
    } else {
      a = sample(probs, rng);
    }
    out.actions[h] = a;
    out.log_prob += log_prob(logits[h], a);
  }
  out.value = value(state);
  return out;
}

std::vector<std::int32_t> PpoAgent::act_greedy(
    std::span<const double> state) const {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  std::vector<std::int32_t> actions(logits.size());
  for (std::size_t h = 0; h < logits.size(); ++h) {
    actions[h] = argmax(logits[h]);
  }
  return actions;
}

double PpoAgent::value(std::span<const double> state) const {
  return critic_.forward(state)[0];
}

PpoAgent::Evaluation PpoAgent::evaluate(
    std::span<const double> state, std::span<const std::int32_t> actions) const {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  Evaluation out;
  for (std::size_t h = 0; h < logits.size(); ++h) {
    out.log_prob += log_prob(logits[h], actions[h]);
  }
  out.value = value(state);
  return out;
}

PpoAgent::UpdateStats PpoAgent::update(const RolloutBuffer& buffer,
                                       double bootstrap_value) {
  UpdateStats stats;
  const auto& items = buffer.items();
  const std::size_t n = items.size();
  if (n == 0) return stats;

  std::vector<double> rewards(n);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    rewards[i] = items[i].reward;
    values[i] = items[i].value;
  }
  GaeResult gae = compute_gae(rewards, values, bootstrap_value, cfg_.gamma,
                              cfg_.gae_lambda);
  normalize(gae.advantages);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const auto batch =
      static_cast<std::size_t>(std::max<std::int32_t>(1, cfg_.minibatch_size));
  double total_policy = 0.0;
  double total_value = 0.0;
  double total_entropy = 0.0;
  double total_kl = 0.0;
  std::size_t total_samples = 0;

  for (std::int32_t epoch = 0; epoch < cfg_.update_epochs; ++epoch) {
    // Fisher-Yates shuffle for decorrelated minibatches.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng_.uniform_int(i)]);
    }
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(n, start + batch);
      const double inv_b = 1.0 / static_cast<double>(end - start);

      for (auto& head : actor_heads_) head.zero_grad();
      critic_.zero_grad();

      for (std::size_t k = start; k < end; ++k) {
        const Transition& tr = items[order[k]];
        const double adv = gae.advantages[order[k]];
        const double ret = gae.returns[order[k]];

        std::vector<std::vector<double>> logits;
        std::vector<Mlp::Cache> caches;
        head_logits(tr.state, logits, &caches);

        double new_logp = 0.0;
        double ent = 0.0;
        std::vector<std::vector<double>> probs(logits.size());
        for (std::size_t h = 0; h < logits.size(); ++h) {
          probs[h] = softmax(logits[h]);
          new_logp += log_prob(logits[h], tr.actions[h]);
          ent += entropy(probs[h]);
        }

        const double ratio = std::exp(new_logp - tr.log_prob);
        const double clipped =
            std::clamp(ratio, 1.0 - cfg_.clip_eps, 1.0 + cfg_.clip_eps);
        const double surr1 = ratio * adv;
        const double surr2 = clipped * adv;
        const double policy_loss = -std::min(surr1, surr2);

        // Gradient of -min(surr1, surr2) w.r.t. new_logp: flows only when
        // the unclipped branch is active (min picks it / clip not binding).
        const double dlogp =
            (surr1 <= surr2) ? (-adv * ratio) * inv_b : 0.0;

        for (std::size_t h = 0; h < logits.size(); ++h) {
          std::vector<double> dlogits(logits[h].size(), 0.0);
          log_prob_grad(probs[h], tr.actions[h], dlogp, dlogits);
          entropy_grad(probs[h], -cfg_.entropy_coef * inv_b, dlogits);
          actor_heads_[h].backward(tr.state, caches[h], dlogits);
        }

        // Critic regression toward the GAE return.
        Mlp::Cache vcache;
        const double v = critic_.forward(tr.state, &vcache)[0];
        const double verr = v - ret;
        const double dv[1] = {2.0 * verr * inv_b};
        critic_.backward(tr.state, vcache, dv);

        total_policy += policy_loss;
        total_value += verr * verr;
        total_entropy += ent;
        total_kl += tr.log_prob - new_logp;
        ++total_samples;
      }
      actor_opt_->step();
      critic_opt_->step();
      ++stats.minibatches;
    }
  }

  if (total_samples > 0) {
    const double inv = 1.0 / static_cast<double>(total_samples);
    stats.policy_loss = total_policy * inv;
    stats.value_loss = total_value * inv;
    stats.entropy = total_entropy * inv;
    stats.approx_kl = total_kl * inv;
  }
  return stats;
}

void PpoAgent::set_learning_rates(double actor_lr, double critic_lr) {
  actor_opt_->set_lr(actor_lr);
  critic_opt_->set_lr(critic_lr);
}

void PpoAgent::reset_optimizers() {
  const double a_lr = actor_opt_->lr();
  const double c_lr = critic_opt_->lr();
  actor_opt_ = std::make_unique<Adam>(
      actor_refs_, AdamConfig{.lr = a_lr, .max_grad_norm = cfg_.max_grad_norm});
  critic_opt_ = std::make_unique<Adam>(
      critic_refs_, AdamConfig{.lr = c_lr, .max_grad_norm = cfg_.max_grad_norm});
}

double PpoAgent::actor_lr() const { return actor_opt_->lr(); }
double PpoAgent::critic_lr() const { return critic_opt_->lr(); }

std::vector<double> PpoAgent::weights() const { return snapshot_params(refs_); }

void PpoAgent::set_weights(std::span<const double> values) {
  restore_params(refs_, values);
}

}  // namespace pet::rl
