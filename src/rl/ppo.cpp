#include "rl/ppo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "rl/categorical.hpp"
#include "rl/gae.hpp"

namespace pet::rl {

PpoAgent::PpoAgent(const PpoConfig& cfg)
    : cfg_(cfg),
      init_rng_(sim::derive_seed(cfg.seed, "ppo-init")),
      critic_([&] {
        std::vector<std::int32_t> sizes{cfg.input_size};
        sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
        sizes.push_back(1);
        return Mlp(sizes, Activation::kTanh, init_rng_);
      }()),
      shuffle_rng_(sim::derive_seed(cfg.seed, "ppo-shuffle")) {
  assert(cfg.input_size > 0 && !cfg.head_sizes.empty());
  actor_heads_.reserve(cfg.head_sizes.size());
  for (const std::int32_t n : cfg.head_sizes) {
    std::vector<std::int32_t> sizes{cfg.input_size};
    sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
    sizes.push_back(n);
    actor_heads_.emplace_back(sizes, Activation::kTanh, init_rng_);
  }
  for (auto& head : actor_heads_) head.collect(actor_refs_);
  critic_.collect(critic_refs_);
  refs_ = actor_refs_;
  refs_.params.insert(refs_.params.end(), critic_refs_.params.begin(),
                      critic_refs_.params.end());
  refs_.grads.insert(refs_.grads.end(), critic_refs_.grads.begin(),
                     critic_refs_.grads.end());
  actor_opt_ = std::make_unique<Adam>(
      actor_refs_,
      AdamConfig{.lr = cfg.actor_lr, .max_grad_norm = cfg.max_grad_norm});
  critic_opt_ = std::make_unique<Adam>(
      critic_refs_,
      AdamConfig{.lr = cfg.critic_lr, .max_grad_norm = cfg.max_grad_norm});
}

void PpoAgent::head_logits(std::span<const double> state,
                           std::vector<std::vector<double>>& logits,
                           std::vector<Mlp::Cache>* caches) const {
  logits.resize(actor_heads_.size());
  if (caches != nullptr) caches->resize(actor_heads_.size());
  for (std::size_t h = 0; h < actor_heads_.size(); ++h) {
    logits[h] = actor_heads_[h].forward(
        state, caches != nullptr ? &(*caches)[h] : nullptr);
  }
}

void PpoAgent::head_logits_batch(std::span<const double> states,
                                 std::int32_t batch,
                                 std::vector<std::vector<double>>& logits,
                                 std::vector<Mlp::BatchCache>* caches) const {
  logits.resize(actor_heads_.size());
  if (caches != nullptr) caches->resize(actor_heads_.size());
  for (std::size_t h = 0; h < actor_heads_.size(); ++h) {
    logits[h] = actor_heads_[h].forward_batch(
        states, batch, caches != nullptr ? &(*caches)[h] : nullptr);
  }
}

PpoAgent::ActResult PpoAgent::act(std::span<const double> state,
                                  sim::Rng& rng) {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  ActResult out;
  out.actions.resize(logits.size());
  for (std::size_t h = 0; h < logits.size(); ++h) {
    const std::vector<double> probs = softmax(logits[h]);
    std::int32_t a;
    if (exploration_rate_ > 0.0 && rng.bernoulli(exploration_rate_)) {
      a = static_cast<std::int32_t>(rng.uniform_int(probs.size()));
    } else {
      a = sample(probs, rng);
    }
    out.actions[h] = a;
    out.log_prob += log_prob(logits[h], a);
  }
  out.value = value(state);
  return out;
}

std::vector<PpoAgent::ActResult> PpoAgent::act_batch(
    std::span<const double> states, std::int32_t batch,
    std::span<sim::Rng* const> rngs, std::span<const double> exploration) {
  assert(static_cast<std::int32_t>(rngs.size()) == batch);
  assert(static_cast<std::int32_t>(exploration.size()) == batch);
  std::vector<std::vector<double>> logits;
  head_logits_batch(states, batch, logits);
  const std::vector<double> values = value_batch(states, batch);

  std::vector<ActResult> out(static_cast<std::size_t>(batch));
  std::vector<double> probs;
  for (std::int32_t s = 0; s < batch; ++s) {
    ActResult& r = out[static_cast<std::size_t>(s)];
    r.actions.resize(logits.size());
    // Per sample, heads are visited in the same order as act(), drawing
    // from that sample's own RNG — bitwise identical decisions.
    for (std::size_t h = 0; h < logits.size(); ++h) {
      const auto nh = static_cast<std::size_t>(actor_heads_[h].output_size());
      const std::span<const double> row(
          &logits[h][static_cast<std::size_t>(s) * nh], nh);
      probs.resize(nh);
      softmax(row, probs);
      std::int32_t a;
      if (exploration[s] > 0.0 && rngs[s]->bernoulli(exploration[s])) {
        a = static_cast<std::int32_t>(rngs[s]->uniform_int(probs.size()));
      } else {
        a = sample(probs, *rngs[s]);
      }
      r.actions[h] = a;
      r.log_prob += log_prob(row, a);
    }
    r.value = values[static_cast<std::size_t>(s)];
  }
  return out;
}

std::vector<std::int32_t> PpoAgent::act_greedy(
    std::span<const double> state) const {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  std::vector<std::int32_t> actions(logits.size());
  for (std::size_t h = 0; h < logits.size(); ++h) {
    actions[h] = argmax(logits[h]);
  }
  return actions;
}

double PpoAgent::value(std::span<const double> state) const {
  return critic_.forward(state)[0];
}

std::vector<double> PpoAgent::value_batch(std::span<const double> states,
                                          std::int32_t batch) const {
  // Critic output size is 1, so the (batch x 1) result is already the flat
  // vector of values.
  return critic_.forward_batch(states, batch);
}

std::vector<PpoAgent::Evaluation> PpoAgent::evaluate_batch(
    std::span<const double> states, std::span<const std::int32_t> actions,
    std::int32_t batch) const {
  const std::size_t num_heads = actor_heads_.size();
  assert(actions.size() == static_cast<std::size_t>(batch) * num_heads);
  std::vector<std::vector<double>> logits;
  head_logits_batch(states, batch, logits);
  const std::vector<double> values = value_batch(states, batch);

  std::vector<Evaluation> out(static_cast<std::size_t>(batch));
  for (std::int32_t s = 0; s < batch; ++s) {
    Evaluation& ev = out[static_cast<std::size_t>(s)];
    for (std::size_t h = 0; h < num_heads; ++h) {
      const auto nh = static_cast<std::size_t>(actor_heads_[h].output_size());
      const std::span<const double> row(
          &logits[h][static_cast<std::size_t>(s) * nh], nh);
      ev.log_prob +=
          log_prob(row, actions[static_cast<std::size_t>(s) * num_heads + h]);
    }
    ev.value = values[static_cast<std::size_t>(s)];
  }
  return out;
}

PpoAgent::Evaluation PpoAgent::evaluate(
    std::span<const double> state, std::span<const std::int32_t> actions) const {
  std::vector<std::vector<double>> logits;
  head_logits(state, logits);
  Evaluation out;
  for (std::size_t h = 0; h < logits.size(); ++h) {
    out.log_prob += log_prob(logits[h], actions[h]);
  }
  out.value = value(state);
  return out;
}

PpoAgent::UpdateStats PpoAgent::update(const RolloutBuffer& buffer,
                                       double bootstrap_value) {
  const RolloutSlice slice{&buffer, bootstrap_value};
  return update_merged({&slice, 1});
}

PpoAgent::UpdateStats PpoAgent::update_merged(
    std::span<const RolloutSlice> slices) {
  UpdateStats stats;

  // Per-slice GAE (trajectories from different replicas must not bleed
  // into each other), concatenated in slice order so the merged batch is
  // deterministic for a given slice ordering.
  std::vector<const Transition*> items;
  std::vector<double> advantages;
  std::vector<double> returns;
  for (const RolloutSlice& slice : slices) {
    if (slice.buffer == nullptr || slice.buffer->empty()) continue;
    const auto& its = slice.buffer->items();
    const std::size_t len = its.size();
    std::vector<double> rewards(len);
    std::vector<double> values(len);
    for (std::size_t i = 0; i < len; ++i) {
      rewards[i] = its[i].reward;
      values[i] = its[i].value;
    }
    const GaeResult gae = compute_gae(rewards, values, slice.bootstrap_value,
                                      cfg_.gamma, cfg_.gae_lambda);
    for (std::size_t i = 0; i < len; ++i) {
      items.push_back(&its[i]);
      advantages.push_back(gae.advantages[i]);
      returns.push_back(gae.returns[i]);
    }
  }
  const std::size_t n = items.size();
  if (n == 0) return stats;
  normalize(advantages);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const auto batch =
      static_cast<std::size_t>(std::max<std::int32_t>(1, cfg_.minibatch_size));
  const auto input = static_cast<std::size_t>(cfg_.input_size);
  const std::size_t num_heads = actor_heads_.size();
  double total_policy = 0.0;
  double total_value = 0.0;
  double total_entropy = 0.0;
  double total_kl = 0.0;
  std::size_t total_samples = 0;

  // Minibatch scratch, reused across iterations.
  std::vector<double> states;
  std::vector<std::vector<double>> logits;
  std::vector<Mlp::BatchCache> caches;
  std::vector<std::vector<double>> probs(num_heads);
  std::vector<std::vector<double>> dlogits(num_heads);
  std::vector<double> new_logp;
  std::vector<double> ent;
  std::vector<double> dlogp;
  std::vector<double> dv;

  for (std::int32_t epoch = 0; epoch < cfg_.update_epochs; ++epoch) {
    // Fisher-Yates shuffle for decorrelated minibatches.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng_.uniform_int(i)]);
    }
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(n, start + batch);
      const std::size_t bs = end - start;
      const auto bsz = static_cast<std::int32_t>(bs);
      const double inv_b = 1.0 / static_cast<double>(bs);

      for (auto& head : actor_heads_) head.zero_grad();
      critic_.zero_grad();

      // Gather the minibatch into one row-major (bs x input) matrix and
      // evaluate every head and the critic once per minibatch (the blocked
      // batch kernels), instead of once per sample.
      states.resize(bs * input);
      for (std::size_t k = 0; k < bs; ++k) {
        const Transition& tr = *items[order[start + k]];
        std::copy(tr.state.begin(), tr.state.end(),
                  states.begin() + static_cast<std::ptrdiff_t>(k * input));
      }
      head_logits_batch(states, bsz, logits, &caches);
      Mlp::BatchCache vcache;
      const std::vector<double> v = critic_.forward_batch(states, bsz, &vcache);

      // Per-sample distributions and joint log-probs. Heads accumulate into
      // new_logp in ascending order, matching the unbatched path exactly.
      new_logp.assign(bs, 0.0);
      ent.assign(bs, 0.0);
      for (std::size_t h = 0; h < num_heads; ++h) {
        const auto nh = static_cast<std::size_t>(actor_heads_[h].output_size());
        probs[h].resize(bs * nh);
        for (std::size_t k = 0; k < bs; ++k) {
          const Transition& tr = *items[order[start + k]];
          const std::span<const double> lrow(&logits[h][k * nh], nh);
          const std::span<double> prow(&probs[h][k * nh], nh);
          softmax(lrow, prow);
          new_logp[k] += log_prob(lrow, tr.actions[h]);
          ent[k] += entropy(prow);
        }
      }

      // Surrogate losses and the scalar upstream gradients.
      dlogp.resize(bs);
      dv.resize(bs);
      for (std::size_t k = 0; k < bs; ++k) {
        const Transition& tr = *items[order[start + k]];
        const double adv = advantages[order[start + k]];
        const double ret = returns[order[start + k]];

        const double ratio = std::exp(new_logp[k] - tr.log_prob);
        const double clipped =
            std::clamp(ratio, 1.0 - cfg_.clip_eps, 1.0 + cfg_.clip_eps);
        const double surr1 = ratio * adv;
        const double surr2 = clipped * adv;

        // Gradient of -min(surr1, surr2) w.r.t. new_logp: flows only when
        // the unclipped branch is active (min picks it / clip not binding).
        dlogp[k] = (surr1 <= surr2) ? (-adv * ratio) * inv_b : 0.0;

        const double verr = v[k] - ret;
        dv[k] = 2.0 * verr * inv_b;

        total_policy += -std::min(surr1, surr2);
        total_value += verr * verr;
        total_entropy += ent[k];
        total_kl += tr.log_prob - new_logp[k];
        ++total_samples;
      }

      // One batched backward per head + critic.
      for (std::size_t h = 0; h < num_heads; ++h) {
        const auto nh = static_cast<std::size_t>(actor_heads_[h].output_size());
        dlogits[h].assign(bs * nh, 0.0);
        for (std::size_t k = 0; k < bs; ++k) {
          const Transition& tr = *items[order[start + k]];
          const std::span<const double> prow(&probs[h][k * nh], nh);
          const std::span<double> drow(&dlogits[h][k * nh], nh);
          log_prob_grad(prow, tr.actions[h], dlogp[k], drow);
          entropy_grad(prow, -cfg_.entropy_coef * inv_b, drow);
        }
        actor_heads_[h].backward_batch(states, caches[h], dlogits[h], bsz);
      }
      critic_.backward_batch(states, vcache, dv, bsz);

      actor_opt_->step();
      critic_opt_->step();
      ++stats.minibatches;
    }
  }

  if (total_samples > 0) {
    const double inv = 1.0 / static_cast<double>(total_samples);
    stats.policy_loss = total_policy * inv;
    stats.value_loss = total_value * inv;
    stats.entropy = total_entropy * inv;
    stats.approx_kl = total_kl * inv;
  }
  if (stats.minibatches > 0) ++weights_version_;
  return stats;
}

void PpoAgent::set_learning_rates(double actor_lr, double critic_lr) {
  actor_opt_->set_lr(actor_lr);
  critic_opt_->set_lr(critic_lr);
}

void PpoAgent::reset_optimizers() {
  const double a_lr = actor_opt_->lr();
  const double c_lr = critic_opt_->lr();
  actor_opt_ = std::make_unique<Adam>(
      actor_refs_, AdamConfig{.lr = a_lr, .max_grad_norm = cfg_.max_grad_norm});
  critic_opt_ = std::make_unique<Adam>(
      critic_refs_, AdamConfig{.lr = c_lr, .max_grad_norm = cfg_.max_grad_norm});
}

double PpoAgent::actor_lr() const { return actor_opt_->lr(); }
double PpoAgent::critic_lr() const { return critic_opt_->lr(); }

std::vector<double> PpoAgent::weights() const { return snapshot_params(refs_); }

bool PpoAgent::set_weights(std::span<const double> values) {
  if (values.size() != refs_.size()) {
    std::fprintf(stderr,
                 "  [ppo] ERROR: weight vector has %zu values but the policy "
                 "has %zu parameters; keeping current model\n",
                 values.size(), refs_.size());
    return false;
  }
  restore_params(refs_, values);
  ++weights_version_;
  return true;
}

void PpoAgent::save_state(sim::ByteSink& out) const {
  // Architecture fingerprint first, so a load against a differently shaped
  // agent fails before any state is touched.
  out.i32(cfg_.input_size);
  out.i32_vec(cfg_.head_sizes);
  out.i32_vec(cfg_.hidden);
  out.u64(refs_.size());
  out.f64_vec(weights());
  actor_opt_->save_state(out);
  critic_opt_->save_state(out);
  out.f64(exploration_rate_);
  out.f64(cfg_.clip_eps);
  out.f64(cfg_.entropy_coef);
  sim::save_rng(out, shuffle_rng_);
}

bool PpoAgent::load_state(sim::ByteSource& in) {
  const std::int32_t input_size = in.i32();
  const std::vector<std::int32_t> head_sizes = in.i32_vec();
  const std::vector<std::int32_t> hidden = in.i32_vec();
  const std::uint64_t num = in.u64();
  if (!in.ok() || input_size != cfg_.input_size ||
      head_sizes != cfg_.head_sizes || hidden != cfg_.hidden ||
      num != refs_.size()) {
    return false;
  }
  const std::vector<double> params = in.f64_vec();
  if (!in.ok() || params.size() != refs_.size()) return false;
  if (!actor_opt_->load_state(in)) return false;
  if (!critic_opt_->load_state(in)) return false;
  const double exploration = in.f64();
  const double clip_eps = in.f64();
  const double entropy_coef = in.f64();
  if (!in.ok()) return false;
  if (!load_rng(in, shuffle_rng_)) return false;
  restore_params(refs_, params);
  ++weights_version_;
  exploration_rate_ = exploration;
  cfg_.clip_eps = clip_eps;
  cfg_.entropy_coef = entropy_coef;
  return true;
}

}  // namespace pet::rl
