#pragma once
// Inference-only snapshots of trained fp64 policies, and the batched
// "policy server" built on them.
//
// Precision contract (see DESIGN.md "Fast Inference Path"):
//  - kFp64: bitwise identical to the training network's forward — the same
//    kernels, the same std::tanh. A fp64-served run is indistinguishable
//    from the direct per-agent path.
//  - kFp32: weights/inputs narrowed once, one fma chain per output, and a
//    rational tanh approximation (|err| <= 2e-6). Error-bounded against the
//    fp64 reference (tests/test_oracle_inference.cpp), not bitwise.
//  - kInt8: per-output-row weight scales (max|row|/127), per-sample dynamic
//    activation scales, exact int32 accumulation, fp32 bias/combine.
//
// All three precisions are bitwise deterministic across backends (scalar vs
// AVX2) — see rl/kernels.hpp.

#include <cstdint>
#include <span>
#include <vector>

#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "sim/checkpoint.hpp"
#include "sim/thread_annotations.hpp"

namespace pet::rl {

enum class InferPrecision : std::uint8_t { kFp64 = 0, kFp32 = 1, kInt8 = 2 };

[[nodiscard]] const char* infer_precision_name(InferPrecision precision);

/// How a PetController serves deployment/greedy decisions: the legacy
/// per-agent fp64 path, or a batched policy server at a given precision
/// (kFp64 serving is bitwise identical to kDirect).
enum class InferMode : std::uint8_t {
  kDirect = 0,
  kFp64 = 1,
  kFp32 = 2,
  kInt8 = 3,
};

[[nodiscard]] const char* infer_mode_name(InferMode mode);
[[nodiscard]] InferPrecision infer_mode_precision(InferMode mode);

/// An immutable, inference-only snapshot of an Mlp at a chosen precision.
/// forward_batch() writes into caller storage and is allocation-free once
/// warm at a fixed batch size; re-quantizing the same architecture reuses
/// all storage (no steady-state allocation when weights change).
class InferenceModel {
 public:
  InferenceModel() = default;

  /// Snapshot `net` at `precision`. Returns false — leaving any previous
  /// snapshot untouched — when a weight or bias is non-finite (a poisoned
  /// network must never be installed for serving).
  [[nodiscard]] bool quantize(const Mlp& net, InferPrecision precision);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] InferPrecision precision() const { return precision_; }
  [[nodiscard]] std::int32_t input_size() const {
    return sizes_.empty() ? 0 : sizes_.front();
  }
  [[nodiscard]] std::int32_t output_size() const {
    return sizes_.empty() ? 0 : sizes_.back();
  }
  [[nodiscard]] const std::vector<std::int32_t>& sizes() const {
    return sizes_;
  }
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }

  /// Grow the internal scratch for `batch` so subsequent forward_batch
  /// calls up to that size never allocate.
  void reserve(std::int32_t batch);

  /// Batched forward: `x` is row-major (batch x input_size()), `y` is
  /// (batch x output_size()). fp32/int8 results are widened to double so
  /// callers are precision-agnostic.
  void forward_batch(std::span<const double> x, std::int32_t batch,
                     std::span<double> y);

  // --- test oracles ----------------------------------------------------------
  /// The effective fp64 weights the snapshot computes with (exact for
  /// kFp64; the narrowed values for kFp32; scale[row] * q for kInt8).
  [[nodiscard]] std::vector<double> dequantized_weights(std::size_t l) const;
  [[nodiscard]] std::vector<double> dequantized_biases(std::size_t l) const;
  /// Per-output-row weight scale (kInt8; 0.0 for an all-zero row).
  [[nodiscard]] double weight_row_scale(std::size_t l, std::int32_t row) const;

  // --- checkpointing (pet.ckpt/1 section payloads) ---------------------------
  /// Exact bit-level round-trip: a restored snapshot reproduces bitwise
  /// identical inference at the same precision.
  void save_state(sim::ByteSink& out) const;
  /// Restores a save_state payload; false (model untouched) on an unknown
  /// format version or corrupted/inconsistent payload.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  struct Layer {
    std::int32_t in = 0;
    std::int32_t out = 0;
    std::vector<double> wd, bd;    // kFp64
    std::vector<float> wf;         // kFp32
    std::vector<float> bf;         // kFp32 + kInt8
    std::vector<std::int8_t> wq;   // kInt8, row-major
    std::vector<float> scale;      // kInt8, per output row
  };

  void forward_f64(std::span<const double> x, std::int32_t batch,
                   std::span<double> y);
  void forward_f32(std::span<const double> x, std::int32_t batch,
                   std::span<double> y);
  void forward_s8(std::span<const double> x, std::int32_t batch,
                  std::span<double> y);

  bool ready_ = false;
  InferPrecision precision_ = InferPrecision::kFp64;
  Activation act_ = Activation::kTanh;
  std::vector<std::int32_t> sizes_;
  std::vector<Layer> layers_;
  std::int32_t max_width_ = 0;

  // Scratch (sized by reserve()/first forward; reused across calls).
  std::vector<double> buf_d_[2];
  std::vector<float> buf_f_[2];
  std::vector<std::int8_t> xq_;
  std::vector<std::int32_t> acc_;
  std::vector<float> sx_;
};

/// One shared-policy controller serving batched greedy decisions for N
/// switches per tick through per-head InferenceModels. install() snapshots
/// the agent's actor heads; refresh() re-quantizes only when the agent's
/// weights_version() moved, so steady-state ticks are quantization-free.
class PolicyServer {
 public:
  PolicyServer() = default;

  [[nodiscard]] bool install(const PpoAgent& agent, InferPrecision precision);
  [[nodiscard]] bool refresh(const PpoAgent& agent);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] InferPrecision precision() const { return precision_; }
  [[nodiscard]] std::uint64_t installed_version() const { return version_; }
  [[nodiscard]] std::size_t num_heads() const { return heads_.size(); }

  void reserve(std::int32_t batch);

  /// Greedy (argmax per head) actions for row-major (batch x input) states;
  /// `actions` is row-major (batch x num_heads()). Allocation-free once
  /// warm at a fixed batch size.
  void serve_greedy(std::span<const double> states, std::int32_t batch,
                    std::span<std::int32_t> actions);

 private:
  // The server is owned and driven by one serving thread (the controller
  // tick); install/refresh and serve_greedy never race by construction.
  bool ready_ PET_THREAD_CONFINED(serving_thread) = false;
  InferPrecision precision_ PET_THREAD_CONFINED(serving_thread) =
      InferPrecision::kFp64;
  std::uint64_t version_ PET_THREAD_CONFINED(serving_thread) = 0;
  std::vector<InferenceModel> heads_ PET_THREAD_CONFINED(serving_thread);
  std::vector<std::int32_t> head_sizes_ PET_THREAD_CONFINED(serving_thread);
  std::vector<double> logits_ PET_THREAD_CONFINED(serving_thread);
};

}  // namespace pet::rl
