#pragma once
// Experience replay for DQN-family agents. ACC's distinguishing (and
// costly) design is a *global* replay shared by all switch agents; the
// buffer therefore tracks per-writer byte accounting so the overhead bench
// can quantify exactly what the paper's Goal 3 avoids.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/rng.hpp"
#include "sim/sorted_keys.hpp"

namespace pet::rl {

struct DqnTransition {
  std::vector<double> state;
  std::vector<std::int32_t> actions;
  double reward = 0.0;
  std::vector<double> next_state;

  [[nodiscard]] std::size_t wire_bytes() const {
    // What a switch would ship to share this sample: two states, the
    // factored action, and the reward.
    return sizeof(double) * (state.size() + next_state.size() + 1) +
           sizeof(std::int32_t) * actions.size();
  }
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(DqnTransition t, std::int32_t writer_id = 0) {
    bytes_pushed_ += t.wire_bytes();
    bytes_by_writer_[writer_id] += t.wire_bytes();
    if (items_.size() < capacity_) {
      items_.push_back(std::move(t));
    } else {
      items_[next_slot_] = std::move(t);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const DqnTransition& at(std::size_t i) const {
    return items_[i];
  }

  /// Uniform random sample of `n` indices (with replacement).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        sim::Rng& rng) const {
    std::vector<std::size_t> idx(n);
    for (auto& i : idx) i = rng.uniform_int(items_.size());
    return idx;
  }

  /// Resident memory of the stored experience (the per-switch memory cost
  /// ACC pays for its global replay).
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& t : items_) total += t.wire_bytes();
    return total;
  }

  [[nodiscard]] std::size_t bytes_pushed() const { return bytes_pushed_; }
  /// Bytes this buffer received from writers other than `reader_id` — the
  /// traffic a switch would need to fetch to mirror the global replay.
  [[nodiscard]] std::size_t bytes_from_others(std::int32_t reader_id) const {
    std::size_t total = 0;
    // pet-lint: allow(nondet-iteration): order-insensitive sum reduction
    for (const auto& [writer, bytes] : bytes_by_writer_) {
      if (writer != reader_id) total += bytes;
    }
    return total;
  }

  /// Checkpoint the stored experience, ring position, and byte accounting.
  /// Writer accounting is emitted in sorted writer-id order so the payload
  /// is independent of hash-map layout.
  void save_state(sim::ByteSink& out) const {
    out.u64(capacity_);
    out.u64(next_slot_);
    out.u64(bytes_pushed_);
    out.u64(items_.size());
    for (const DqnTransition& t : items_) {
      out.f64_vec(t.state);
      out.i32_vec(t.actions);
      out.f64(t.reward);
      out.f64_vec(t.next_state);
    }
    const auto writers = sim::sorted_keys(bytes_by_writer_);
    out.u64(writers.size());
    for (std::int32_t writer : writers) {
      out.i32(writer);
      out.u64(bytes_by_writer_.at(writer));
    }
  }

  /// Restores a save_state payload; false (buffer untouched) when the
  /// payload is corrupted or capacities disagree.
  [[nodiscard]] bool load_state(sim::ByteSource& in) {
    const std::uint64_t capacity = in.u64();
    const std::uint64_t next_slot = in.u64();
    const std::uint64_t bytes_pushed = in.u64();
    const std::uint64_t count = in.u64();
    if (!in.ok() || capacity != capacity_ || count > capacity ||
        next_slot >= capacity) {
      return false;
    }
    std::vector<DqnTransition> items;
    items.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      DqnTransition t;
      t.state = in.f64_vec();
      t.actions = in.i32_vec();
      t.reward = in.f64();
      t.next_state = in.f64_vec();
      items.push_back(std::move(t));
    }
    const std::uint64_t writer_count = in.u64();
    std::unordered_map<std::int32_t, std::size_t> by_writer;
    for (std::uint64_t i = 0; i < writer_count; ++i) {
      const std::int32_t writer = in.i32();
      by_writer[writer] = static_cast<std::size_t>(in.u64());
    }
    if (!in.ok()) return false;
    items_ = std::move(items);
    next_slot_ = static_cast<std::size_t>(next_slot);
    bytes_pushed_ = static_cast<std::size_t>(bytes_pushed);
    bytes_by_writer_ = std::move(by_writer);
    return true;
  }

 private:
  std::size_t capacity_;
  std::vector<DqnTransition> items_;
  std::size_t next_slot_ = 0;
  std::size_t bytes_pushed_ = 0;
  std::unordered_map<std::int32_t, std::size_t> bytes_by_writer_;
};

}  // namespace pet::rl
