#pragma once
// Experience replay for DQN-family agents. ACC's distinguishing (and
// costly) design is a *global* replay shared by all switch agents; the
// buffer therefore tracks per-writer byte accounting so the overhead bench
// can quantify exactly what the paper's Goal 3 avoids.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"

namespace pet::rl {

struct DqnTransition {
  std::vector<double> state;
  std::vector<std::int32_t> actions;
  double reward = 0.0;
  std::vector<double> next_state;

  [[nodiscard]] std::size_t wire_bytes() const {
    // What a switch would ship to share this sample: two states, the
    // factored action, and the reward.
    return sizeof(double) * (state.size() + next_state.size() + 1) +
           sizeof(std::int32_t) * actions.size();
  }
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(DqnTransition t, std::int32_t writer_id = 0) {
    bytes_pushed_ += t.wire_bytes();
    bytes_by_writer_[writer_id] += t.wire_bytes();
    if (items_.size() < capacity_) {
      items_.push_back(std::move(t));
    } else {
      items_[next_slot_] = std::move(t);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const DqnTransition& at(std::size_t i) const {
    return items_[i];
  }

  /// Uniform random sample of `n` indices (with replacement).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        sim::Rng& rng) const {
    std::vector<std::size_t> idx(n);
    for (auto& i : idx) i = rng.uniform_int(items_.size());
    return idx;
  }

  /// Resident memory of the stored experience (the per-switch memory cost
  /// ACC pays for its global replay).
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& t : items_) total += t.wire_bytes();
    return total;
  }

  [[nodiscard]] std::size_t bytes_pushed() const { return bytes_pushed_; }
  /// Bytes this buffer received from writers other than `reader_id` — the
  /// traffic a switch would need to fetch to mirror the global replay.
  [[nodiscard]] std::size_t bytes_from_others(std::int32_t reader_id) const {
    std::size_t total = 0;
    // pet-lint: allow(nondet-iteration): order-insensitive sum reduction
    for (const auto& [writer, bytes] : bytes_by_writer_) {
      if (writer != reader_id) total += bytes;
    }
    return total;
  }

 private:
  std::size_t capacity_;
  std::vector<DqnTransition> items_;
  std::size_t next_slot_ = 0;
  std::size_t bytes_pushed_ = 0;
  std::unordered_map<std::int32_t, std::size_t> bytes_by_writer_;
};

}  // namespace pet::rl
