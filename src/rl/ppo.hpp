#pragma once
// PPO with clipped surrogate objective (Schulman et al. 2017) over a
// factored discrete action space: one categorical head per action dimension
// (Kmin exponent, Kmax exponent, Pmax step), joint log-prob = sum of heads.
// The multi-agent IPPO scheme of the paper is "independent learning": every
// switch owns one of these agents and trains on its local trajectory only.

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/adam.hpp"
#include "rl/mlp.hpp"
#include "rl/rollout.hpp"
#include "sim/checkpoint.hpp"
#include "sim/rng.hpp"

namespace pet::rl {

struct PpoConfig {
  std::int32_t input_size = 0;
  std::vector<std::int32_t> head_sizes;         // action dims
  std::vector<std::int32_t> hidden = {64, 64};  // per-network hidden layers
  double actor_lr = 4e-4;   // paper Section 5.2
  double critic_lr = 1e-3;  // paper Section 5.2
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_eps = 0.2;  // paper Section 5.2
  double entropy_coef = 0.04;
  std::int32_t update_epochs = 4;  // N optimization epochs per rollout
  std::int32_t minibatch_size = 64;
  double max_grad_norm = 0.5;
  std::uint64_t seed = 0;
};

class PpoAgent {
 public:
  explicit PpoAgent(const PpoConfig& cfg);

  struct ActResult {
    std::vector<std::int32_t> actions;
    double log_prob = 0.0;
    double value = 0.0;
  };

  /// Sample an action. With probability `exploration_rate` a head picks a
  /// uniformly random action instead of sampling the policy (the paper's
  /// decaying exploration, Eq. (13)); log_prob is always evaluated under
  /// the current policy so the PPO ratio stays well-defined.
  [[nodiscard]] ActResult act(std::span<const double> state, sim::Rng& rng);

  /// Batched act over row-major (batch x input_size) states — one policy
  /// evaluated for many agents/observations in a single pass. Each sample
  /// draws from its own RNG stream with its own exploration rate, so the
  /// per-sample random sequences (and therefore results) are bitwise
  /// identical to sequential act() calls in the same order.
  [[nodiscard]] std::vector<ActResult> act_batch(
      std::span<const double> states, std::int32_t batch,
      std::span<sim::Rng* const> rngs, std::span<const double> exploration);

  /// Deterministic (argmax per head) action for evaluation.
  [[nodiscard]] std::vector<std::int32_t> act_greedy(
      std::span<const double> state) const;

  /// Critic value estimate (bootstrap for unfinished episodes).
  [[nodiscard]] double value(std::span<const double> state) const;

  /// Batched critic values for row-major (batch x input_size) states.
  [[nodiscard]] std::vector<double> value_batch(std::span<const double> states,
                                                std::int32_t batch) const;

  /// Joint log-prob (under the current policy) and value for externally
  /// chosen actions — lets a deployment-mode agent act greedily while still
  /// feeding consistent transitions to PPO.
  struct Evaluation {
    double log_prob = 0.0;
    double value = 0.0;
  };
  [[nodiscard]] Evaluation evaluate(std::span<const double> state,
                                    std::span<const std::int32_t> actions) const;

  /// Batched evaluate: `states` is (batch x input_size), `actions` is
  /// (batch x num_heads), both row-major.
  [[nodiscard]] std::vector<Evaluation> evaluate_batch(
      std::span<const double> states, std::span<const std::int32_t> actions,
      std::int32_t batch) const;

  struct UpdateStats {
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
    double approx_kl = 0.0;
    std::int32_t minibatches = 0;
  };

  /// One PPO update from a contiguous trajectory; leaves the buffer intact
  /// (callers clear it).
  UpdateStats update(const RolloutBuffer& buffer, double bootstrap_value);

  /// One independently collected trajectory segment contributing to a
  /// merged update: GAE never crosses slice boundaries, each slice
  /// bootstraps from its own final state.
  struct RolloutSlice {
    const RolloutBuffer* buffer = nullptr;
    double bootstrap_value = 0.0;
  };

  /// Merged update over trajectories from independent replicas of the same
  /// policy (parallel rollout collection): per-slice GAE, advantages
  /// normalized jointly, then the usual shuffled-minibatch epochs over the
  /// union. Slices must be passed in a deterministic order (replica id) —
  /// the result is then a pure function of (weights, slices, seed),
  /// independent of how many threads collected them. update() is the
  /// single-slice special case.
  UpdateStats update_merged(std::span<const RolloutSlice> slices);

  // --- online-training knobs (hybrid training, Section 4.4) -----------------
  void set_exploration_rate(double rate) { exploration_rate_ = rate; }
  [[nodiscard]] double exploration_rate() const { return exploration_rate_; }
  void set_clip_eps(double eps) { cfg_.clip_eps = eps; }
  [[nodiscard]] double clip_eps() const { return cfg_.clip_eps; }
  void set_entropy_coef(double coef) { cfg_.entropy_coef = coef; }
  [[nodiscard]] double entropy_coef() const { return cfg_.entropy_coef; }

  /// Adjust optimizer learning rates (offline pre-training typically runs
  /// hotter than online incremental training).
  void set_learning_rates(double actor_lr, double critic_lr);
  [[nodiscard]] double actor_lr() const;
  [[nodiscard]] double critic_lr() const;

  /// Rebuild both Adam optimizers with fresh (zeroed) moment estimates at
  /// the current learning rates. Required after a weight rollback: the old
  /// moments belong to the discarded trajectory and may carry NaN/Inf from
  /// the update that poisoned the weights.
  void reset_optimizers();

  // --- serialization (offline pre-training -> per-switch deployment) --------
  [[nodiscard]] std::vector<double> weights() const;
  /// Installs a full parameter snapshot. Returns false (and leaves the
  /// current model untouched) when `values` does not match num_params() —
  /// e.g. a stale weight cache trained with a different architecture.
  [[nodiscard]] bool set_weights(std::span<const double> values);

  [[nodiscard]] const PpoConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_params() const { return refs_.size(); }

  // --- inference-only snapshots (rl::InferenceModel / rl::PolicyServer) -----
  [[nodiscard]] std::size_t num_heads() const { return actor_heads_.size(); }
  [[nodiscard]] const Mlp& actor_head(std::size_t h) const {
    return actor_heads_[h];
  }
  /// Monotonic counter bumped whenever the parameters change (optimizer
  /// steps, set_weights, load_state). A policy server compares it against
  /// the version it quantized so steady-state ticks skip re-quantization.
  [[nodiscard]] std::uint64_t weights_version() const {
    return weights_version_;
  }

  // --- checkpointing (pet.ckpt/1 section payloads) --------------------------
  /// Full learning state: architecture fingerprint, parameters, both Adam
  /// trajectories, the mutable training knobs, and the minibatch-shuffle
  /// RNG position — everything needed so a restored agent continues the
  /// exact update sequence an uninterrupted run would have produced.
  void save_state(sim::ByteSink& out) const;
  /// Restores a save_state payload; false (agent untouched) on an
  /// architecture mismatch or corrupted payload.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  void head_logits(std::span<const double> state,
                   std::vector<std::vector<double>>& logits,
                   std::vector<Mlp::Cache>* caches = nullptr) const;
  /// Per-head logits for a (batch x input_size) state matrix; logits[h] is
  /// row-major (batch x head_sizes[h]).
  void head_logits_batch(std::span<const double> states, std::int32_t batch,
                         std::vector<std::vector<double>>& logits,
                         std::vector<Mlp::BatchCache>* caches = nullptr) const;

  PpoConfig cfg_;
  sim::Rng init_rng_;
  std::vector<Mlp> actor_heads_;  // one small MLP per action dimension
  Mlp critic_;
  ParamRefs actor_refs_;
  ParamRefs critic_refs_;
  ParamRefs refs_;  // actor + critic, for snapshots
  std::unique_ptr<Adam> actor_opt_;
  std::unique_ptr<Adam> critic_opt_;
  double exploration_rate_ = 0.0;
  std::uint64_t weights_version_ = 1;
  sim::Rng shuffle_rng_;
};

}  // namespace pet::rl
