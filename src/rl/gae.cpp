#include "rl/gae.hpp"

#include <cmath>

namespace pet::rl {

void normalize(std::span<double> xs) {
  if (xs.size() < 2) return;
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  const double sd = std::sqrt(var);
  if (sd < 1e-8) return;
  for (auto& x : xs) x = (x - mean) / sd;
}

}  // namespace pet::rl
