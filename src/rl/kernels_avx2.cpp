// AVX2 implementations of the rl::kern kernels, isolated in one TU behind
// function-level target attributes so the rest of the build keeps the
// portable baseline ISA. Dispatch (kernels.cpp) only calls into this TU
// after cpu_has_avx2() confirms AVX2+FMA at runtime.
//
// Bitwise contracts (see kernels.hpp):
//  - f64 uses target("avx2") WITHOUT fma so the compiler cannot contract
//    the mul+add pair; every lane reproduces the scalar two-rounding chain.
//  - f32 uses one vfmadd chain per output lane; the scalar fallback runs
//    the same IEEE fma sequence, so results match bitwise.
//  - s8 accumulates exactly in int32 (order-independent).

#include <cmath>
#include <cstdint>

#include "rl/kernels_detail.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PET_KERN_X86 1
#else
#define PET_KERN_X86 0
#endif

namespace pet::rl::kern::detail {

#if PET_KERN_X86

bool cpu_has_avx2() {
  // The fp32 kernels need FMA as well; on x86-64 the two arrived together
  // (Haswell), so gate the whole AVX2 backend on both.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") != 0;
}

__attribute__((target("avx2"))) void gemm_bias_f64_avx2(
    const double* w, const double* b, const double* x, double* y,
    std::int32_t batch, std::int32_t in, std::int32_t out,
    const double* pack) {
  // `pack` interleaves full 4-row tiles: element (row r, input i) of tile
  // base row o sits at pack[o*in + i*4 + r]. One load per input column per
  // tile; lane r is exactly the scalar ascending mul-then-add chain for
  // output o+r (this function is compiled without FMA contraction).
  const std::int32_t full = out - out % 4;
  const std::size_t tile = 4 * static_cast<std::size_t>(in);
  for (std::int32_t s = 0; s < batch; ++s) {
    const double* xs = &x[static_cast<std::size_t>(s) * in];
    double* ys = &y[static_cast<std::size_t>(s) * out];
    std::int32_t o = 0;
    // Two tiles per pass: independent accumulator chains hide add latency
    // without touching any chain's summation order.
    for (; o + 8 <= full; o += 8) {
      const double* p0 = pack + static_cast<std::size_t>(o) * in;
      const double* p1 = p0 + tile;
      __m256d acc0 = _mm256_loadu_pd(b + o);
      __m256d acc1 = _mm256_loadu_pd(b + o + 4);
      for (std::int32_t i = 0; i < in; ++i) {
        const __m256d xv = _mm256_broadcast_sd(xs + i);
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(_mm256_loadu_pd(p0 + 4 * i), xv));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(_mm256_loadu_pd(p1 + 4 * i), xv));
      }
      _mm256_storeu_pd(ys + o, acc0);
      _mm256_storeu_pd(ys + o + 4, acc1);
    }
    for (; o + 4 <= full; o += 4) {
      const double* p0 = pack + static_cast<std::size_t>(o) * in;
      __m256d acc0 = _mm256_loadu_pd(b + o);
      for (std::int32_t i = 0; i < in; ++i) {
        const __m256d xv = _mm256_broadcast_sd(xs + i);
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(_mm256_loadu_pd(p0 + 4 * i), xv));
      }
      _mm256_storeu_pd(ys + o, acc0);
    }
    for (; o < out; ++o) {
      const double* row = &w[static_cast<std::size_t>(o) * in];
      double acc = b[o];
      for (std::int32_t i = 0; i < in; ++i) acc += row[i] * xs[i];
      ys[o] = acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void gemm_bias_f32_avx2(
    const float* w, const float* b, const float* x, float* y,
    std::int32_t batch, std::int32_t in, std::int32_t out, const float* pack) {
  // 8-row tiles: pack[o*in + i*8 + r] holds (row o+r, input i). Each lane
  // is one fused-multiply-add chain in ascending-input order; the scalar
  // remainder rows run the identical std::fma sequence.
  const std::int32_t full = out - out % 8;
  const std::size_t tile = 8 * static_cast<std::size_t>(in);
  for (std::int32_t s = 0; s < batch; ++s) {
    const float* xs = &x[static_cast<std::size_t>(s) * in];
    float* ys = &y[static_cast<std::size_t>(s) * out];
    std::int32_t o = 0;
    for (; o + 16 <= full; o += 16) {
      const float* p0 = pack + static_cast<std::size_t>(o) * in;
      const float* p1 = p0 + tile;
      __m256 acc0 = _mm256_loadu_ps(b + o);
      __m256 acc1 = _mm256_loadu_ps(b + o + 8);
      for (std::int32_t i = 0; i < in; ++i) {
        const __m256 xv = _mm256_broadcast_ss(xs + i);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(p0 + 8 * i), xv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(p1 + 8 * i), xv, acc1);
      }
      _mm256_storeu_ps(ys + o, acc0);
      _mm256_storeu_ps(ys + o + 8, acc1);
    }
    for (; o + 8 <= full; o += 8) {
      const float* p0 = pack + static_cast<std::size_t>(o) * in;
      __m256 acc0 = _mm256_loadu_ps(b + o);
      for (std::int32_t i = 0; i < in; ++i) {
        const __m256 xv = _mm256_broadcast_ss(xs + i);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(p0 + 8 * i), xv, acc0);
      }
      _mm256_storeu_ps(ys + o, acc0);
    }
    for (; o < out; ++o) {
      const float* row = &w[static_cast<std::size_t>(o) * in];
      float acc = b[o];
      for (std::int32_t i = 0; i < in; ++i) acc = std::fma(row[i], xs[i], acc);
      ys[o] = acc;
    }
  }
}

namespace {

__attribute__((target("avx2"))) inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

}  // namespace

namespace {

/// Sign-extend 16 int8 lanes to int16 from `p`.
__attribute__((target("avx2"))) inline __m256i load_s8x16_epi16(
    const std::int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

__attribute__((target("avx2"))) void gemm_s8i32_avx2(
    const std::int8_t* w, const std::int8_t* x, std::int32_t* acc,
    std::int32_t batch, std::int32_t in, std::int32_t out) {
  // Horizontal dot products over the contiguous int8 weight rows:
  // sign-extend 16 int8 lanes to int16, _mm256_madd_epi16 pairs them into
  // int32 partials. Four output rows share each load of the input vector,
  // and their partial sums reduce together through one hadd tree instead of
  // four scalar horizontal sums. Integer addition is exact, so any
  // summation order gives the same accumulator as the scalar loop.
  for (std::int32_t s = 0; s < batch; ++s) {
    const std::int8_t* xs = &x[static_cast<std::size_t>(s) * in];
    std::int32_t* as = &acc[static_cast<std::size_t>(s) * out];
    std::int32_t o = 0;
    for (; o + 4 <= out; o += 4) {
      const std::int8_t* r0 = &w[static_cast<std::size_t>(o) * in];
      const std::int8_t* r1 = r0 + in;
      const std::int8_t* r2 = r1 + in;
      const std::int8_t* r3 = r2 + in;
      __m256i v0 = _mm256_setzero_si256();
      __m256i v1 = _mm256_setzero_si256();
      __m256i v2 = _mm256_setzero_si256();
      __m256i v3 = _mm256_setzero_si256();
      std::int32_t i = 0;
      for (; i + 16 <= in; i += 16) {
        const __m256i xv = load_s8x16_epi16(xs + i);
        v0 = _mm256_add_epi32(
            v0, _mm256_madd_epi16(load_s8x16_epi16(r0 + i), xv));
        v1 = _mm256_add_epi32(
            v1, _mm256_madd_epi16(load_s8x16_epi16(r1 + i), xv));
        v2 = _mm256_add_epi32(
            v2, _mm256_madd_epi16(load_s8x16_epi16(r2 + i), xv));
        v3 = _mm256_add_epi32(
            v3, _mm256_madd_epi16(load_s8x16_epi16(r3 + i), xv));
      }
      // hadd tree: lane k of `quad` ends up holding the full sum of v_k.
      const __m256i t01 = _mm256_hadd_epi32(v0, v1);
      const __m256i t23 = _mm256_hadd_epi32(v2, v3);
      const __m256i t = _mm256_hadd_epi32(t01, t23);
      __m128i quad = _mm_add_epi32(_mm256_castsi256_si128(t),
                                   _mm256_extracti128_si256(t, 1));
      if (i < in) {
        std::int32_t e0 = 0;
        std::int32_t e1 = 0;
        std::int32_t e2 = 0;
        std::int32_t e3 = 0;
        for (; i < in; ++i) {
          const auto xi = static_cast<std::int32_t>(xs[i]);
          e0 += static_cast<std::int32_t>(r0[i]) * xi;
          e1 += static_cast<std::int32_t>(r1[i]) * xi;
          e2 += static_cast<std::int32_t>(r2[i]) * xi;
          e3 += static_cast<std::int32_t>(r3[i]) * xi;
        }
        quad = _mm_add_epi32(quad, _mm_setr_epi32(e0, e1, e2, e3));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(as + o), quad);
    }
    for (; o < out; ++o) {
      const std::int8_t* row = &w[static_cast<std::size_t>(o) * in];
      __m256i vacc = _mm256_setzero_si256();
      std::int32_t i = 0;
      for (; i + 16 <= in; i += 16) {
        vacc = _mm256_add_epi32(
            vacc, _mm256_madd_epi16(load_s8x16_epi16(row + i),
                                    load_s8x16_epi16(xs + i)));
      }
      std::int32_t a = hsum_epi32(vacc);
      for (; i < in; ++i) {
        a += static_cast<std::int32_t>(row[i]) *
             static_cast<std::int32_t>(xs[i]);
      }
      as[o] = a;
    }
  }
}

__attribute__((target("avx2"))) void quantize_rows_s8_avx2(
    const float* x, std::int8_t* q, float* sx, std::int32_t batch,
    std::int32_t in) {
  // Compiled without FMA so the mul + magic add/sub pair below cannot be
  // contracted: every lane reproduces quantize_lane_s8 exactly.
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 magic = _mm256_set1_ps(kQuantMagic);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  for (std::int32_t s = 0; s < batch; ++s) {
    const float* row = &x[static_cast<std::size_t>(s) * in];
    std::int8_t* qrow = &q[static_cast<std::size_t>(s) * in];
    __m256 vmax = _mm256_setzero_ps();
    std::int32_t i = 0;
    for (; i + 8 <= in; i += 8) {
      vmax = _mm256_max_ps(vmax,
                           _mm256_and_ps(_mm256_loadu_ps(row + i), abs_mask));
    }
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(vmax),
                           _mm256_extractf128_ps(vmax, 1));
    m4 = _mm_max_ps(m4, _mm_shuffle_ps(m4, m4, _MM_SHUFFLE(1, 0, 3, 2)));
    m4 = _mm_max_ps(m4, _mm_shuffle_ps(m4, m4, _MM_SHUFFLE(2, 3, 0, 1)));
    float max_abs = _mm_cvtss_f32(m4);
    for (; i < in; ++i) {
      const float a = std::fabs(row[i]);
      max_abs = a > max_abs ? a : max_abs;
    }
    if (max_abs == 0.0f) {
      sx[s] = 0.0f;
      for (i = 0; i < in; ++i) qrow[i] = 0;
      continue;
    }
    sx[s] = max_abs / 127.0f;
    const float inv = 127.0f / max_abs;
    const __m256 vinv = _mm256_set1_ps(inv);
    for (i = 0; i + 16 <= in; i += 16) {
      __m256 a = _mm256_mul_ps(_mm256_loadu_ps(row + i), vinv);
      __m256 b = _mm256_mul_ps(_mm256_loadu_ps(row + i + 8), vinv);
      a = _mm256_sub_ps(_mm256_add_ps(a, magic), magic);
      b = _mm256_sub_ps(_mm256_add_ps(b, magic), magic);
      a = _mm256_min_ps(_mm256_max_ps(a, lo), hi);
      b = _mm256_min_ps(_mm256_max_ps(b, lo), hi);
      // Values are integral in [-127, 127]: the i32 conversion is exact and
      // the saturating packs cannot saturate.
      const __m256i ai = _mm256_cvtps_epi32(a);
      const __m256i bi = _mm256_cvtps_epi32(b);
      __m256i p16 = _mm256_packs_epi32(ai, bi);
      p16 = _mm256_permute4x64_epi64(p16, _MM_SHUFFLE(3, 1, 2, 0));
      const __m128i p8 = _mm_packs_epi16(_mm256_castsi256_si128(p16),
                                         _mm256_extracti128_si256(p16, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(qrow + i), p8);
    }
    for (; i < in; ++i) qrow[i] = quantize_lane_s8(row[i], inv);
  }
}

__attribute__((target("avx2,fma"))) void tanh_inplace_f32_avx2(
    float* v, std::int64_t n) {
  const __m256 clamp_hi = _mm256_set1_ps(kTanhClamp);
  const __m256 clamp_lo = _mm256_set1_ps(-kTanhClamp);
  const __m256 a13 = _mm256_set1_ps(kTanhAlpha13);
  const __m256 a11 = _mm256_set1_ps(kTanhAlpha11);
  const __m256 a9 = _mm256_set1_ps(kTanhAlpha9);
  const __m256 a7 = _mm256_set1_ps(kTanhAlpha7);
  const __m256 a5 = _mm256_set1_ps(kTanhAlpha5);
  const __m256 a3 = _mm256_set1_ps(kTanhAlpha3);
  const __m256 a1 = _mm256_set1_ps(kTanhAlpha1);
  const __m256 b6 = _mm256_set1_ps(kTanhBeta6);
  const __m256 b4 = _mm256_set1_ps(kTanhBeta4);
  const __m256 b2 = _mm256_set1_ps(kTanhBeta2);
  const __m256 b0 = _mm256_set1_ps(kTanhBeta0);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(v + i);
    x = _mm256_max_ps(x, clamp_lo);
    x = _mm256_min_ps(x, clamp_hi);
    const __m256 x2 = _mm256_mul_ps(x, x);
    __m256 p = _mm256_fmadd_ps(x2, a13, a11);
    p = _mm256_fmadd_ps(x2, p, a9);
    p = _mm256_fmadd_ps(x2, p, a7);
    p = _mm256_fmadd_ps(x2, p, a5);
    p = _mm256_fmadd_ps(x2, p, a3);
    p = _mm256_fmadd_ps(x2, p, a1);
    p = _mm256_mul_ps(x, p);
    __m256 q = _mm256_fmadd_ps(x2, b6, b4);
    q = _mm256_fmadd_ps(x2, q, b2);
    q = _mm256_fmadd_ps(x2, q, b0);
    _mm256_storeu_ps(v + i, _mm256_div_ps(p, q));
  }
  // Scalar tail: the identical operation sequence (std::fma is one vfmadd
  // lane), so vector vs scalar coverage of an element is indistinguishable.
  for (; i < n; ++i) {
    float xc = v[i] < -kTanhClamp ? -kTanhClamp : v[i];
    xc = xc > kTanhClamp ? kTanhClamp : xc;
    const float x2 = xc * xc;
    float p = std::fma(x2, kTanhAlpha13, kTanhAlpha11);
    p = std::fma(x2, p, kTanhAlpha9);
    p = std::fma(x2, p, kTanhAlpha7);
    p = std::fma(x2, p, kTanhAlpha5);
    p = std::fma(x2, p, kTanhAlpha3);
    p = std::fma(x2, p, kTanhAlpha1);
    p = xc * p;
    float q = std::fma(x2, kTanhBeta6, kTanhBeta4);
    q = std::fma(x2, q, kTanhBeta2);
    q = std::fma(x2, q, kTanhBeta0);
    v[i] = p / q;
  }
}

#else  // !PET_KERN_X86

bool cpu_has_avx2() { return false; }

// Unreachable off x86 — dispatch never selects the AVX2 backend when
// cpu_has_avx2() is false.
void gemm_bias_f64_avx2(const double*, const double*, const double*, double*,
                        std::int32_t, std::int32_t, std::int32_t,
                        const double*) {}
void gemm_bias_f32_avx2(const float*, const float*, const float*, float*,
                        std::int32_t, std::int32_t, std::int32_t,
                        const float*) {}
void gemm_s8i32_avx2(const std::int8_t*, const std::int8_t*, std::int32_t*,
                     std::int32_t, std::int32_t, std::int32_t) {}
void quantize_rows_s8_avx2(const float*, std::int8_t*, float*, std::int32_t,
                           std::int32_t) {}
void tanh_inplace_f32_avx2(float*, std::int64_t) {}

#endif  // PET_KERN_X86

}  // namespace pet::rl::kern::detail
