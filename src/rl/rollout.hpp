#pragma once
// On-policy trajectory storage for PPO.

#include <cstdint>
#include <vector>

namespace pet::rl {

struct Transition {
  std::vector<double> state;
  std::vector<std::int32_t> actions;  // one index per factored head
  double log_prob = 0.0;              // joint log-prob at collection time
  double value = 0.0;                 // V(state) at collection time
  double reward = 0.0;
};

class RolloutBuffer {
 public:
  void push(Transition t) { items_.push_back(std::move(t)); }
  void clear() { items_.clear(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const std::vector<Transition>& items() const { return items_; }
  [[nodiscard]] std::vector<Transition>& items() { return items_; }

 private:
  std::vector<Transition> items_;
};

}  // namespace pet::rl
