#include "rl/mlp.hpp"

#include <cassert>
#include <cmath>

#include "rl/kernels.hpp"

namespace pet::rl {

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::int32_t in, std::int32_t out, sim::Rng& rng)
    : in_(in),
      out_(out),
      w_(static_cast<std::size_t>(in) * static_cast<std::size_t>(out)),
      b_(static_cast<std::size_t>(out), 0.0),
      gw_(w_.size(), 0.0),
      gb_(b_.size(), 0.0) {
  assert(in > 0 && out > 0);
  // Glorot-uniform initialization.
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (auto& v : w_) v = rng.uniform(-bound, bound);
}

void Linear::forward(std::span<const double> x, std::span<double> y) const {
  assert(static_cast<std::int32_t>(x.size()) == in_);
  assert(static_cast<std::int32_t>(y.size()) == out_);
  for (std::int32_t o = 0; o < out_; ++o) {
    const double* row = &w_[static_cast<std::size_t>(o) * in_];
    double acc = b_[o];
    for (std::int32_t i = 0; i < in_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
}

void Linear::backward(std::span<const double> x, std::span<const double> dy,
                      std::span<double> dx) {
  assert(static_cast<std::int32_t>(x.size()) == in_);
  assert(static_cast<std::int32_t>(dy.size()) == out_);
  if (!dx.empty()) {
    assert(static_cast<std::int32_t>(dx.size()) == in_);
    for (auto& v : dx) v = 0.0;
  }
  for (std::int32_t o = 0; o < out_; ++o) {
    const double g = dy[o];
    if (g == 0.0) continue;
    double* grow = &gw_[static_cast<std::size_t>(o) * in_];
    const double* row = &w_[static_cast<std::size_t>(o) * in_];
    gb_[o] += g;
    for (std::int32_t i = 0; i < in_; ++i) {
      grow[i] += g * x[i];
      if (!dx.empty()) dx[i] += g * row[i];
    }
  }
}

void Linear::forward_batch(std::span<const double> x, std::span<double> y,
                           std::int32_t batch) const {
  assert(static_cast<std::int32_t>(x.size()) == batch * in_);
  assert(static_cast<std::int32_t>(y.size()) == batch * out_);
  // Runtime-dispatched GEMM (scalar reference or AVX2); both backends keep
  // each (sample, output) accumulation in ascending-input order with
  // separate multiply/add roundings, so the result is bitwise identical to
  // `batch` sequential forward() calls.
  kern::gemm_bias_f64(w_.data(), b_.data(), x.data(), y.data(), batch, in_,
                      out_);
}

void Linear::backward_batch(std::span<const double> x,
                            std::span<const double> dy, std::span<double> dx,
                            std::int32_t batch) {
  assert(static_cast<std::int32_t>(x.size()) == batch * in_);
  assert(static_cast<std::int32_t>(dy.size()) == batch * out_);
  if (!dx.empty()) {
    assert(static_cast<std::int32_t>(dx.size()) == batch * in_);
  }
  // Samples accumulate in ascending order per parameter — the same order a
  // loop of single-sample backward() calls produces — so merged training is
  // bitwise independent of whether the batch path was used.
  for (std::int32_t s = 0; s < batch; ++s) {
    const double* xs = &x[static_cast<std::size_t>(s) * in_];
    const double* dys = &dy[static_cast<std::size_t>(s) * out_];
    double* dxs =
        dx.empty() ? nullptr : &dx[static_cast<std::size_t>(s) * in_];
    if (dxs != nullptr) {
      for (std::int32_t i = 0; i < in_; ++i) dxs[i] = 0.0;
    }
    for (std::int32_t o = 0; o < out_; ++o) {
      const double g = dys[o];
      if (g == 0.0) continue;
      double* grow = &gw_[static_cast<std::size_t>(o) * in_];
      const double* row = &w_[static_cast<std::size_t>(o) * in_];
      gb_[o] += g;
      for (std::int32_t i = 0; i < in_; ++i) {
        grow[i] += g * xs[i];
        if (dxs != nullptr) dxs[i] += g * row[i];
      }
    }
  }
}

void Linear::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

void Linear::collect(ParamRefs& refs) {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    refs.params.push_back(&w_[i]);
    refs.grads.push_back(&gw_[i]);
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    refs.params.push_back(&b_[i]);
    refs.grads.push_back(&gb_[i]);
  }
}

// ---------------------------------------------------------------------------
// Mlp
// ---------------------------------------------------------------------------

namespace {
[[nodiscard]] double activate(Activation act, double pre) {
  return act == Activation::kTanh ? std::tanh(pre) : (pre > 0.0 ? pre : 0.0);
}
/// Derivative through the activation, expressed with whichever of pre/post
/// is cheapest.
[[nodiscard]] double activate_grad(Activation act, double pre, double post) {
  return act == Activation::kTanh ? 1.0 - post * post
                                  : (pre > 0.0 ? 1.0 : 0.0);
}
}  // namespace

Mlp::Mlp(std::vector<std::int32_t> sizes, Activation act, sim::Rng& rng)
    : sizes_(std::move(sizes)), act_(act) {
  assert(sizes_.size() >= 2);
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    layers_.emplace_back(sizes_[l], sizes_[l + 1], rng);
  }
}

std::vector<double> Mlp::forward(std::span<const double> x,
                                 Cache* cache) const {
  assert(static_cast<std::int32_t>(x.size()) == input_size());
  if (cache != nullptr) {
    cache->pre.assign(layers_.size(), {});
    cache->post.assign(layers_.size(), {});
  }
  std::vector<double> cur(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> pre(static_cast<std::size_t>(layers_[l].out_size()));
    layers_[l].forward(cur, pre);
    const bool is_last = (l + 1 == layers_.size());
    if (cache != nullptr) {
      std::vector<double> post = pre;
      if (!is_last) {
        for (auto& v : post) v = activate(act_, v);
      }
      cache->pre[l] = pre;
      cache->post[l] = post;
      cur = std::move(post);
    } else {
      // Inference path: activate in place, skip the capture copy.
      if (!is_last) {
        for (auto& v : pre) v = activate(act_, v);
      }
      cur = std::move(pre);
    }
  }
  return cur;
}

std::vector<double> Mlp::backward(std::span<const double> x,
                                  const Cache& cache,
                                  std::span<const double> dy) {
  assert(cache.pre.size() == layers_.size());
  std::vector<double> grad(dy.begin(), dy.end());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const bool is_last = (li + 1 == layers_.size());
    if (!is_last) {
      // Through the activation.
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= activate_grad(act_, cache.pre[li][i], cache.post[li][i]);
      }
    }
    const std::span<const double> input =
        li == 0 ? x : std::span<const double>(cache.post[li - 1]);
    std::vector<double> dx(input.size());
    layers_[li].backward(input, grad, dx);
    grad = std::move(dx);
  }
  return grad;
}

std::vector<double> Mlp::forward_batch(std::span<const double> x,
                                       std::int32_t batch,
                                       BatchCache* cache) const {
  assert(static_cast<std::int32_t>(x.size()) == batch * input_size());
  if (cache != nullptr) {
    cache->batch = batch;
    cache->pre.assign(layers_.size(), {});
    cache->post.assign(layers_.size(), {});
  }
  std::vector<double> cur(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> pre(static_cast<std::size_t>(batch) *
                            static_cast<std::size_t>(layers_[l].out_size()));
    layers_[l].forward_batch(cur, pre, batch);
    const bool is_last = (l + 1 == layers_.size());
    if (cache != nullptr) {
      // Training path: capture pre-activations for backward_batch, then the
      // post-activation plane (backprop reads both).
      std::vector<double> post = pre;
      if (!is_last) {
        for (auto& v : post) v = activate(act_, v);
      }
      cache->pre[l] = pre;
      cache->post[l] = post;
      cur = std::move(post);
    } else {
      // Inference path: no consumer for the per-layer planes — activate in
      // place and skip the capture copies entirely. Numerics are unchanged
      // (the same activate() is applied to the same linear outputs).
      if (!is_last) {
        for (auto& v : pre) v = activate(act_, v);
      }
      cur = std::move(pre);
    }
  }
  return cur;
}

std::vector<double> Mlp::backward_batch(std::span<const double> x,
                                        const BatchCache& cache,
                                        std::span<const double> dy,
                                        std::int32_t batch) {
  assert(cache.pre.size() == layers_.size());
  assert(cache.batch == batch);
  assert(static_cast<std::int32_t>(dy.size()) == batch * output_size());
  std::vector<double> grad(dy.begin(), dy.end());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const bool is_last = (li + 1 == layers_.size());
    if (!is_last) {
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= activate_grad(act_, cache.pre[li][i], cache.post[li][i]);
      }
    }
    const std::span<const double> input =
        li == 0 ? x : std::span<const double>(cache.post[li - 1]);
    std::vector<double> dx(input.size());
    layers_[li].backward_batch(input, grad, dx, batch);
    grad = std::move(dx);
  }
  return grad;
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void Mlp::collect(ParamRefs& refs) {
  for (auto& layer : layers_) layer.collect(refs);
}

std::size_t Mlp::num_params() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    total += static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1] + sizes_[l + 1];
  }
  return total;
}

void Linear::save_state(sim::ByteSink& out) const {
  out.i32(in_);
  out.i32(out_);
  out.f64_vec(w_);
  out.f64_vec(b_);
}

bool Linear::load_state(sim::ByteSource& in) {
  const std::int32_t in_size = in.i32();
  const std::int32_t out_size = in.i32();
  std::vector<double> w = in.f64_vec();
  std::vector<double> b = in.f64_vec();
  if (!in.ok() || in_size != in_ || out_size != out_ || w.size() != w_.size() ||
      b.size() != b_.size()) {
    return false;
  }
  w_ = std::move(w);
  b_ = std::move(b);
  return true;
}

void Mlp::save_state(sim::ByteSink& out) const {
  out.i32_vec(sizes_);
  out.u8(act_ == Activation::kTanh ? 0 : 1);
  for (const Linear& layer : layers_) layer.save_state(out);
}

bool Mlp::load_state(sim::ByteSource& in) {
  const std::vector<std::int32_t> sizes = in.i32_vec();
  const std::uint8_t act = in.u8();
  if (!in.ok() || sizes != sizes_ ||
      act != (act_ == Activation::kTanh ? 0 : 1)) {
    return false;
  }
  for (Linear& layer : layers_) {
    if (!layer.load_state(in)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------

std::vector<double> snapshot_params(const ParamRefs& refs) {
  std::vector<double> out;
  out.reserve(refs.params.size());
  for (const double* p : refs.params) out.push_back(*p);
  return out;
}

void restore_params(const ParamRefs& refs, std::span<const double> values) {
  assert(values.size() == refs.params.size());
  for (std::size_t i = 0; i < values.size(); ++i) *refs.params[i] = values[i];
}

}  // namespace pet::rl
