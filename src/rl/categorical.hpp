#pragma once
// Categorical distribution utilities over raw logits (numerically stable).

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace pet::rl {

/// probs[i] = exp(logits[i] - max) / sum.
inline void softmax(std::span<const double> logits, std::span<double> probs) {
  assert(logits.size() == probs.size() && !logits.empty());
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    sum += probs[i];
  }
  for (auto& p : probs) p /= sum;
}

[[nodiscard]] inline std::vector<double> softmax(
    std::span<const double> logits) {
  std::vector<double> probs(logits.size());
  softmax(logits, probs);
  return probs;
}

/// log p[a] computed stably from logits.
[[nodiscard]] inline double log_prob(std::span<const double> logits,
                                     std::int32_t action) {
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (const double l : logits) sum += std::exp(l - mx);
  return logits[static_cast<std::size_t>(action)] - mx - std::log(sum);
}

[[nodiscard]] inline std::int32_t sample(std::span<const double> probs,
                                         sim::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(probs.size() - 1);
}

[[nodiscard]] inline std::int32_t argmax(std::span<const double> values) {
  return static_cast<std::int32_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

[[nodiscard]] inline double entropy(std::span<const double> probs) {
  double h = 0.0;
  for (const double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

/// d(log p[a])/d(logits[i]) = [i == a] - p[i]; returns the gradient scaled
/// by `upstream` (dL/d log p[a]).
inline void log_prob_grad(std::span<const double> probs, std::int32_t action,
                          double upstream, std::span<double> dlogits) {
  assert(probs.size() == dlogits.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    dlogits[i] = upstream * ((static_cast<std::int32_t>(i) == action ? 1.0 : 0.0) - probs[i]);
  }
}

/// dH/d(logits[i]) for entropy H of softmax(logits):
/// dH/dz_i = -p_i * (log p_i + H). Scaled by `upstream` and ACCUMULATED.
inline void entropy_grad(std::span<const double> probs, double upstream,
                         std::span<double> dlogits) {
  const double h = entropy(probs);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double logp = probs[i] > 0.0 ? std::log(probs[i]) : 0.0;
    dlogits[i] += upstream * (-probs[i] * (logp + h));
  }
}

}  // namespace pet::rl
