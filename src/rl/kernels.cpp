#include "rl/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cmath>

#include "rl/kernels_detail.hpp"

namespace pet::rl::kern {

namespace {

enum class Mode : std::uint8_t { kAuto = 0, kForceScalar, kForceAvx2 };

std::atomic<Mode> g_mode{Mode::kAuto};

[[nodiscard]] bool use_avx2() {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case Mode::kForceScalar:
      return false;
    case Mode::kForceAvx2:
      return true;
    case Mode::kAuto:
      break;
  }
  static const bool supported = detail::cpu_has_avx2();
  return supported;
}

// Thread-local weight-pack scratch for the AVX2 GEMMs. resize() to the same
// shape never reallocates, so steady-state calls are allocation-free.
thread_local std::vector<double> t_pack_f64;
thread_local std::vector<float> t_pack_f32;

/// Interleave full row-tiles of `w` (out x in, row-major): tile t covers
/// rows [t*rows, t*rows+rows) and stores element (r, i) at
/// pack[t*rows*in + i*rows + r], so one vector load yields column i of the
/// whole tile. Remainder rows (out % rows) stay in `w`.
template <typename T>
void pack_row_tiles(const T* w, std::int32_t in, std::int32_t out,
                    std::int32_t rows, std::vector<T>& pack) {
  const std::int32_t full = out - out % rows;
  pack.resize(static_cast<std::size_t>(full) * static_cast<std::size_t>(in));
  T* p = pack.data();
  for (std::int32_t o = 0; o < full; o += rows) {
    const T* base = w + static_cast<std::size_t>(o) * in;
    for (std::int32_t i = 0; i < in; ++i) {
      for (std::int32_t r = 0; r < rows; ++r) {
        *p++ = base[static_cast<std::size_t>(r) * in + i];
      }
    }
  }
}

void gemm_bias_f64_scalar(const double* PET_KERN_RESTRICT w,
                          const double* PET_KERN_RESTRICT b,
                          const double* PET_KERN_RESTRICT x,
                          double* PET_KERN_RESTRICT y, std::int32_t batch,
                          std::int32_t in, std::int32_t out) {
  // Register blocking: four output rows share each load of the input row.
  // Every accumulator sums inputs in ascending order with separate multiply
  // and add roundings, so each output is bitwise identical to the naive
  // per-output loop (and to one AVX2 lane of the vector path).
  constexpr std::int32_t kRowTile = 4;
  for (std::int32_t s = 0; s < batch; ++s) {
    const double* xs = &x[static_cast<std::size_t>(s) * in];
    double* ys = &y[static_cast<std::size_t>(s) * out];
    std::int32_t o = 0;
    for (; o + kRowTile <= out; o += kRowTile) {
      const double* r0 = &w[static_cast<std::size_t>(o) * in];
      const double* r1 = r0 + in;
      const double* r2 = r1 + in;
      const double* r3 = r2 + in;
      double a0 = b[o];
      double a1 = b[o + 1];
      double a2 = b[o + 2];
      double a3 = b[o + 3];
      for (std::int32_t i = 0; i < in; ++i) {
        const double xi = xs[i];
        a0 += r0[i] * xi;
        a1 += r1[i] * xi;
        a2 += r2[i] * xi;
        a3 += r3[i] * xi;
      }
      ys[o] = a0;
      ys[o + 1] = a1;
      ys[o + 2] = a2;
      ys[o + 3] = a3;
    }
    for (; o < out; ++o) {
      const double* row = &w[static_cast<std::size_t>(o) * in];
      double acc = b[o];
      for (std::int32_t i = 0; i < in; ++i) acc += row[i] * xs[i];
      ys[o] = acc;
    }
  }
}

void gemm_bias_f32_scalar(const float* PET_KERN_RESTRICT w,
                          const float* PET_KERN_RESTRICT b,
                          const float* PET_KERN_RESTRICT x,
                          float* PET_KERN_RESTRICT y, std::int32_t batch,
                          std::int32_t in, std::int32_t out) {
  // One std::fma chain per output in ascending-input order: the same IEEE
  // operation sequence as one fused-multiply-add lane of the AVX2 kernel,
  // so scalar and vector fp32 results are bitwise identical.
  constexpr std::int32_t kRowTile = 4;
  for (std::int32_t s = 0; s < batch; ++s) {
    const float* xs = &x[static_cast<std::size_t>(s) * in];
    float* ys = &y[static_cast<std::size_t>(s) * out];
    std::int32_t o = 0;
    for (; o + kRowTile <= out; o += kRowTile) {
      const float* r0 = &w[static_cast<std::size_t>(o) * in];
      const float* r1 = r0 + in;
      const float* r2 = r1 + in;
      const float* r3 = r2 + in;
      float a0 = b[o];
      float a1 = b[o + 1];
      float a2 = b[o + 2];
      float a3 = b[o + 3];
      for (std::int32_t i = 0; i < in; ++i) {
        const float xi = xs[i];
        a0 = std::fma(r0[i], xi, a0);
        a1 = std::fma(r1[i], xi, a1);
        a2 = std::fma(r2[i], xi, a2);
        a3 = std::fma(r3[i], xi, a3);
      }
      ys[o] = a0;
      ys[o + 1] = a1;
      ys[o + 2] = a2;
      ys[o + 3] = a3;
    }
    for (; o < out; ++o) {
      const float* row = &w[static_cast<std::size_t>(o) * in];
      float acc = b[o];
      for (std::int32_t i = 0; i < in; ++i) acc = std::fma(row[i], xs[i], acc);
      ys[o] = acc;
    }
  }
}

void gemm_s8i32_scalar(const std::int8_t* PET_KERN_RESTRICT w,
                       const std::int8_t* PET_KERN_RESTRICT x,
                       std::int32_t* PET_KERN_RESTRICT acc, std::int32_t batch,
                       std::int32_t in, std::int32_t out) {
  for (std::int32_t s = 0; s < batch; ++s) {
    const std::int8_t* xs = &x[static_cast<std::size_t>(s) * in];
    std::int32_t* as = &acc[static_cast<std::size_t>(s) * out];
    for (std::int32_t o = 0; o < out; ++o) {
      const std::int8_t* row = &w[static_cast<std::size_t>(o) * in];
      std::int32_t a = 0;
      for (std::int32_t i = 0; i < in; ++i) {
        a += static_cast<std::int32_t>(row[i]) *
             static_cast<std::int32_t>(xs[i]);
      }
      as[o] = a;
    }
  }
}

void quantize_rows_s8_scalar(const float* PET_KERN_RESTRICT x,
                             std::int8_t* PET_KERN_RESTRICT q,
                             float* PET_KERN_RESTRICT sx, std::int32_t batch,
                             std::int32_t in) {
  // max is exact and order-independent, and every lane runs the shared
  // quantize_lane_s8 sequence, so this matches the AVX2 plane bitwise.
  for (std::int32_t s = 0; s < batch; ++s) {
    const float* row = &x[static_cast<std::size_t>(s) * in];
    std::int8_t* qrow = &q[static_cast<std::size_t>(s) * in];
    float max_abs = 0.0f;
    for (std::int32_t i = 0; i < in; ++i) {
      const float a = std::fabs(row[i]);
      max_abs = a > max_abs ? a : max_abs;
    }
    if (max_abs == 0.0f) {
      sx[s] = 0.0f;
      for (std::int32_t i = 0; i < in; ++i) qrow[i] = 0;
      continue;
    }
    sx[s] = max_abs / 127.0f;
    const float inv = 127.0f / max_abs;
    for (std::int32_t i = 0; i < in; ++i) {
      qrow[i] = detail::quantize_lane_s8(row[i], inv);
    }
  }
}

}  // namespace

bool avx2_supported() { return detail::cpu_has_avx2(); }

Backend active_backend() {
  return use_avx2() ? Backend::kAvx2 : Backend::kScalar;
}

void set_backend(Backend backend) {
  if (backend == Backend::kAvx2 && !detail::cpu_has_avx2()) {
    backend = Backend::kScalar;
  }
  g_mode.store(backend == Backend::kAvx2 ? Mode::kForceAvx2
                                         : Mode::kForceScalar,
               std::memory_order_relaxed);
}

void reset_backend() { g_mode.store(Mode::kAuto, std::memory_order_relaxed); }

void gemm_bias_f64(const double* PET_KERN_RESTRICT w,
                   const double* PET_KERN_RESTRICT b,
                   const double* PET_KERN_RESTRICT x,
                   double* PET_KERN_RESTRICT y, std::int32_t batch,
                   std::int32_t in, std::int32_t out) {
  assert(batch >= 0 && in > 0 && out > 0);
  if (use_avx2() && out >= 4) {
    pack_row_tiles(w, in, out, 4, t_pack_f64);
    detail::gemm_bias_f64_avx2(w, b, x, y, batch, in, out, t_pack_f64.data());
    return;
  }
  gemm_bias_f64_scalar(w, b, x, y, batch, in, out);
}

void gemm_bias_f32(const float* PET_KERN_RESTRICT w,
                   const float* PET_KERN_RESTRICT b,
                   const float* PET_KERN_RESTRICT x,
                   float* PET_KERN_RESTRICT y, std::int32_t batch,
                   std::int32_t in, std::int32_t out) {
  assert(batch >= 0 && in > 0 && out > 0);
  if (use_avx2() && out >= 8) {
    pack_row_tiles(w, in, out, 8, t_pack_f32);
    detail::gemm_bias_f32_avx2(w, b, x, y, batch, in, out, t_pack_f32.data());
    return;
  }
  gemm_bias_f32_scalar(w, b, x, y, batch, in, out);
}

void gemm_s8i32(const std::int8_t* PET_KERN_RESTRICT w,
                const std::int8_t* PET_KERN_RESTRICT x,
                std::int32_t* PET_KERN_RESTRICT acc, std::int32_t batch,
                std::int32_t in, std::int32_t out) {
  assert(batch >= 0 && in > 0 && out > 0);
  if (use_avx2() && in >= 16) {
    detail::gemm_s8i32_avx2(w, x, acc, batch, in, out);
    return;
  }
  gemm_s8i32_scalar(w, x, acc, batch, in, out);
}

void quantize_rows_s8(const float* PET_KERN_RESTRICT x,
                      std::int8_t* PET_KERN_RESTRICT q,
                      float* PET_KERN_RESTRICT sx, std::int32_t batch,
                      std::int32_t in) {
  assert(batch >= 0 && in > 0);
  if (use_avx2() && in >= 16) {
    detail::quantize_rows_s8_avx2(x, q, sx, batch, in);
    return;
  }
  quantize_rows_s8_scalar(x, q, sx, batch, in);
}

void tanh_inplace_f64(double* v, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) v[i] = std::tanh(v[i]);
}

void tanh_inplace_f32(float* v, std::int64_t n) {
  if (use_avx2() && n >= 8) {
    detail::tanh_inplace_f32_avx2(v, n);
    return;
  }
  // Scalar path mirrors the AVX2 lane operation-for-operation (clamp via
  // max-then-min, the same fma ladder, one IEEE division).
  using namespace detail;
  for (std::int64_t i = 0; i < n; ++i) {
    float xc = v[i] < -kTanhClamp ? -kTanhClamp : v[i];
    xc = xc > kTanhClamp ? kTanhClamp : xc;
    const float x2 = xc * xc;
    float p = std::fma(x2, kTanhAlpha13, kTanhAlpha11);
    p = std::fma(x2, p, kTanhAlpha9);
    p = std::fma(x2, p, kTanhAlpha7);
    p = std::fma(x2, p, kTanhAlpha5);
    p = std::fma(x2, p, kTanhAlpha3);
    p = std::fma(x2, p, kTanhAlpha1);
    p = xc * p;
    float q = std::fma(x2, kTanhBeta6, kTanhBeta4);
    q = std::fma(x2, q, kTanhBeta2);
    q = std::fma(x2, q, kTanhBeta0);
    v[i] = p / q;
  }
}

}  // namespace pet::rl::kern
