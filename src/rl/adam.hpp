#pragma once
// Adam optimizer over the flat parameter view collected from modules.

#include <cstdint>
#include <vector>

#include "rl/mlp.hpp"
#include "sim/checkpoint.hpp"

namespace pet::rl {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Clip the global gradient L2 norm before the step (0 disables).
  double max_grad_norm = 0.5;
};

class Adam {
 public:
  Adam(ParamRefs refs, const AdamConfig& cfg)
      : refs_(std::move(refs)),
        cfg_(cfg),
        m_(refs_.size(), 0.0),
        v_(refs_.size(), 0.0) {}

  void set_lr(double lr) { cfg_.lr = lr; }
  [[nodiscard]] double lr() const { return cfg_.lr; }
  [[nodiscard]] std::int64_t steps() const { return t_; }

  /// Apply one update from the currently accumulated gradients.
  /// Does NOT zero the gradients; callers own that.
  void step();

  /// Checkpoint the optimizer trajectory: step count, first/second moment
  /// estimates, and the (mutable) learning rate. The rest of the config is
  /// construction-time and not saved.
  void save_state(sim::ByteSink& out) const;
  /// Restores the trajectory; false (optimizer untouched) when the moment
  /// vectors do not match this optimizer's parameter count.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  ParamRefs refs_;
  AdamConfig cfg_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::int64_t t_ = 0;
};

}  // namespace pet::rl
