#include "rl/adam.hpp"

#include <cmath>
#include <utility>

namespace pet::rl {

void Adam::step() {
  ++t_;
  double scale = 1.0;
  if (cfg_.max_grad_norm > 0.0) {
    double sq = 0.0;
    for (const double* g : refs_.grads) sq += (*g) * (*g);
    const double norm = std::sqrt(sq);
    if (norm > cfg_.max_grad_norm) scale = cfg_.max_grad_norm / norm;
  }
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < refs_.size(); ++i) {
    const double g = *refs_.grads[i] * scale;
    m_[i] = cfg_.beta1 * m_[i] + (1.0 - cfg_.beta1) * g;
    v_[i] = cfg_.beta2 * v_[i] + (1.0 - cfg_.beta2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    *refs_.params[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
  }
}

void Adam::save_state(sim::ByteSink& out) const {
  out.f64(cfg_.lr);
  out.i64(t_);
  out.f64_vec(m_);
  out.f64_vec(v_);
}

bool Adam::load_state(sim::ByteSource& in) {
  const double lr = in.f64();
  const std::int64_t t = in.i64();
  std::vector<double> m = in.f64_vec();
  std::vector<double> v = in.f64_vec();
  if (!in.ok() || t < 0 || m.size() != refs_.size() ||
      v.size() != refs_.size()) {
    return false;
  }
  cfg_.lr = lr;
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

}  // namespace pet::rl
