#pragma once
// Small dense networks with explicit backpropagation. The policy/value
// networks in this problem are tiny (tens of inputs, two hidden layers), so
// a hand-rolled MLP with numerically verified gradients replaces the
// paper's PyTorch dependency.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace pet::rl {

/// Parameter/gradient element pointers collected from modules; the flat
/// view optimizers operate on. Pointers stay valid for the module lifetime
/// (parameter vectors never resize).
struct ParamRefs {
  std::vector<double*> params;
  std::vector<double*> grads;

  [[nodiscard]] std::size_t size() const { return params.size(); }
};

/// Fully connected layer y = W x + b with gradient accumulation.
class Linear {
 public:
  Linear(std::int32_t in, std::int32_t out, sim::Rng& rng);

  [[nodiscard]] std::int32_t in_size() const { return in_; }
  [[nodiscard]] std::int32_t out_size() const { return out_; }

  void forward(std::span<const double> x, std::span<double> y) const;

  /// Accumulate dL/dW, dL/db from upstream gradient `dy`; if `dx` is
  /// non-empty, also produce dL/dx (size in_size()).
  void backward(std::span<const double> x, std::span<const double> dy,
                std::span<double> dx);

  void zero_grad();
  void collect(ParamRefs& refs);

 private:
  std::int32_t in_;
  std::int32_t out_;
  std::vector<double> w_;   // out x in, row-major
  std::vector<double> b_;   // out
  std::vector<double> gw_;  // same shape as w_
  std::vector<double> gb_;
};

enum class Activation { kTanh, kRelu };

/// Multi-layer perceptron: Linear layers with `act` on hidden layers and a
/// linear output layer.
class Mlp {
 public:
  /// sizes = {input, hidden..., output}; at least {input, output}.
  Mlp(std::vector<std::int32_t> sizes, Activation act, sim::Rng& rng);

  [[nodiscard]] std::int32_t input_size() const { return sizes_.front(); }
  [[nodiscard]] std::int32_t output_size() const { return sizes_.back(); }

  /// Per-layer activations captured in forward, consumed by backward.
  struct Cache {
    std::vector<std::vector<double>> pre;   // linear outputs
    std::vector<std::vector<double>> post;  // after activation
  };

  [[nodiscard]] std::vector<double> forward(std::span<const double> x,
                                            Cache* cache = nullptr) const;

  /// Backprop dL/dy (size output_size()); returns dL/dx. `x` and `cache`
  /// must come from the corresponding forward call.
  std::vector<double> backward(std::span<const double> x, const Cache& cache,
                               std::span<const double> dy);

  void zero_grad();
  void collect(ParamRefs& refs);

  [[nodiscard]] std::size_t num_params() const;

 private:
  std::vector<std::int32_t> sizes_;
  Activation act_;
  std::vector<Linear> layers_;
};

/// Snapshot / restore all parameters reachable through `refs` (model
/// serialization and target-network sync).
[[nodiscard]] std::vector<double> snapshot_params(const ParamRefs& refs);
void restore_params(const ParamRefs& refs, std::span<const double> values);

}  // namespace pet::rl
