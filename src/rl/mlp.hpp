#pragma once
// Small dense networks with explicit backpropagation. The policy/value
// networks in this problem are tiny (tens of inputs, two hidden layers), so
// a hand-rolled MLP with numerically verified gradients replaces the
// paper's PyTorch dependency.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/rng.hpp"

namespace pet::rl {

/// Parameter/gradient element pointers collected from modules; the flat
/// view optimizers operate on. Pointers stay valid for the module lifetime
/// (parameter vectors never resize).
struct ParamRefs {
  std::vector<double*> params;
  std::vector<double*> grads;

  [[nodiscard]] std::size_t size() const { return params.size(); }
};

/// Fully connected layer y = W x + b with gradient accumulation.
class Linear {
 public:
  Linear(std::int32_t in, std::int32_t out, sim::Rng& rng);

  [[nodiscard]] std::int32_t in_size() const { return in_; }
  [[nodiscard]] std::int32_t out_size() const { return out_; }

  /// Read-only parameter views (row-major out x in), for inference-only
  /// snapshots (rl::InferenceModel) and test oracles.
  [[nodiscard]] std::span<const double> weights() const { return w_; }
  [[nodiscard]] std::span<const double> biases() const { return b_; }

  void forward(std::span<const double> x, std::span<double> y) const;

  /// Accumulate dL/dW, dL/db from upstream gradient `dy`; if `dx` is
  /// non-empty, also produce dL/dx (size in_size()).
  void backward(std::span<const double> x, std::span<const double> dy,
                std::span<double> dx);

  /// Batched forward over row-major matrices: `x` is (batch x in), `y` is
  /// (batch x out). Uses a register-blocked GEMM inner loop but keeps each
  /// (sample, output) accumulation in ascending-input order, so the result
  /// is bitwise identical to `batch` sequential forward() calls.
  void forward_batch(std::span<const double> x, std::span<double> y,
                     std::int32_t batch) const;

  /// Batched backward: `x` (batch x in), `dy` (batch x out); if `dx` is
  /// non-empty (batch x in), also produces per-sample input gradients.
  /// Gradient accumulation visits samples in ascending order per parameter,
  /// bitwise-matching `batch` sequential backward() calls.
  void backward_batch(std::span<const double> x, std::span<const double> dy,
                      std::span<double> dx, std::int32_t batch);

  void zero_grad();
  void collect(ParamRefs& refs);

  /// Checkpoint the layer shape + parameters (gradients are transient and
  /// zeroed before every update, so they are not saved).
  void save_state(sim::ByteSink& out) const;
  /// Restores parameters; false (layer untouched) on a shape mismatch or
  /// truncated payload.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  std::int32_t in_;
  std::int32_t out_;
  std::vector<double> w_;   // out x in, row-major
  std::vector<double> b_;   // out
  std::vector<double> gw_;  // same shape as w_
  std::vector<double> gb_;
};

enum class Activation { kTanh, kRelu };

/// Multi-layer perceptron: Linear layers with `act` on hidden layers and a
/// linear output layer.
class Mlp {
 public:
  /// sizes = {input, hidden..., output}; at least {input, output}.
  Mlp(std::vector<std::int32_t> sizes, Activation act, sim::Rng& rng);

  [[nodiscard]] std::int32_t input_size() const { return sizes_.front(); }
  [[nodiscard]] std::int32_t output_size() const { return sizes_.back(); }

  /// Architecture introspection for inference-only weight snapshots.
  [[nodiscard]] const std::vector<std::int32_t>& sizes() const {
    return sizes_;
  }
  [[nodiscard]] Activation activation() const { return act_; }
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const Linear& layer(std::size_t l) const { return layers_[l]; }

  /// Per-layer activations captured in forward, consumed by backward.
  struct Cache {
    std::vector<std::vector<double>> pre;   // linear outputs
    std::vector<std::vector<double>> post;  // after activation
  };

  [[nodiscard]] std::vector<double> forward(std::span<const double> x,
                                            Cache* cache = nullptr) const;

  /// Backprop dL/dy (size output_size()); returns dL/dx. `x` and `cache`
  /// must come from the corresponding forward call.
  std::vector<double> backward(std::span<const double> x, const Cache& cache,
                               std::span<const double> dy);

  /// Per-layer batched activations captured by forward_batch, consumed by
  /// backward_batch. Layer l holds row-major (batch x sizes_[l+1]) planes.
  struct BatchCache {
    std::int32_t batch = 0;
    std::vector<std::vector<double>> pre;
    std::vector<std::vector<double>> post;
  };

  /// Batched forward: `x` is row-major (batch x input_size()); returns
  /// row-major (batch x output_size()). Bitwise identical to `batch`
  /// forward() calls — the batched path is a pure reordering of the same
  /// per-sample dot products.
  [[nodiscard]] std::vector<double> forward_batch(
      std::span<const double> x, std::int32_t batch,
      BatchCache* cache = nullptr) const;

  /// Batched backprop of `dy` (batch x output_size()); accumulates
  /// parameter gradients for the whole batch and returns dL/dx
  /// (batch x input_size()). Bitwise identical to sequential backward()
  /// calls over the same samples in order.
  std::vector<double> backward_batch(std::span<const double> x,
                                     const BatchCache& cache,
                                     std::span<const double> dy,
                                     std::int32_t batch);

  void zero_grad();
  void collect(ParamRefs& refs);

  [[nodiscard]] std::size_t num_params() const;

  /// Checkpoint architecture fingerprint + all layer parameters.
  void save_state(sim::ByteSink& out) const;
  /// Restores all layers; false on an architecture mismatch (sizes or
  /// activation differ) or truncated payload.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  std::vector<std::int32_t> sizes_;
  Activation act_;
  std::vector<Linear> layers_;
};

/// Snapshot / restore all parameters reachable through `refs` (model
/// serialization and target-network sync).
[[nodiscard]] std::vector<double> snapshot_params(const ParamRefs& refs);
void restore_params(const ParamRefs& refs, std::span<const double> values);

}  // namespace pet::rl
