#pragma once
// Batched dense kernels for the RL hot path. Every kernel has a scalar
// reference implementation and (on x86-64) an AVX2 implementation selected
// by runtime dispatch; the two produce bitwise-identical results:
//
//  - f64: each output accumulates inputs in ascending order with separate
//    multiply and add roundings (no FMA contraction) — the exact floating-
//    point sequence of the naive per-sample loop, so the batched/AVX2 path
//    is a pure reordering of the training forward and goldens are safe.
//  - f32: each output is one fused-multiply-add chain in ascending order;
//    the scalar path uses std::fma(float) which is the same IEEE operation
//    as one vfmadd lane.
//  - s8:  exact int32 arithmetic (order-independent), scales applied by the
//    caller in a fixed scalar sequence; activation quantization rounds the
//    single-precision product to nearest-even and clamps in the float
//    domain, the same operation chain on every backend.
//
// Results are therefore a function of the *precision*, never of the machine
// the binary happens to run on.

#include <cstdint>
#include <vector>

#if defined(__GNUC__) || defined(__clang__)
#define PET_KERN_RESTRICT __restrict__
#else
#define PET_KERN_RESTRICT
#endif

namespace pet::rl::kern {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1 };

/// True when the CPU supports the AVX2 kernels (always false off x86-64).
[[nodiscard]] bool avx2_supported();

/// Backend the next kernel call will use. Defaults to runtime detection
/// (kAvx2 when supported, kScalar otherwise).
[[nodiscard]] Backend active_backend();

/// Pin the backend (tests and benchmarks); requests for an unsupported
/// backend clamp to kScalar. The setting is process-global.
void set_backend(Backend backend);

/// Restore runtime detection.
void reset_backend();

/// y[s,o] = b[o] + sum_i w[o,i] * x[s,i] over row-major operands:
/// `w` is (out x in), `x` is (batch x in), `y` is (batch x out).
/// The AVX2 path repacks weights into thread-local scratch; steady-state
/// calls at a fixed shape are allocation-free on every backend.
void gemm_bias_f64(const double* PET_KERN_RESTRICT w,
                   const double* PET_KERN_RESTRICT b,
                   const double* PET_KERN_RESTRICT x,
                   double* PET_KERN_RESTRICT y, std::int32_t batch,
                   std::int32_t in, std::int32_t out);

/// fp32 variant; one FMA chain per output (see header comment).
void gemm_bias_f32(const float* PET_KERN_RESTRICT w,
                   const float* PET_KERN_RESTRICT b,
                   const float* PET_KERN_RESTRICT x,
                   float* PET_KERN_RESTRICT y, std::int32_t batch,
                   std::int32_t in, std::int32_t out);

/// Exact int32 accumulation acc[s,o] = sum_i w[o,i] * x[s,i] of int8
/// operands. Safe against overflow for in <= 2^16 (|product| <= 127^2).
/// The caller applies bias and scales.
void gemm_s8i32(const std::int8_t* PET_KERN_RESTRICT w,
                const std::int8_t* PET_KERN_RESTRICT x,
                std::int32_t* PET_KERN_RESTRICT acc, std::int32_t batch,
                std::int32_t in, std::int32_t out);

/// Per-sample dynamic int8 quantization of a (batch x in) row-major fp32
/// activation plane. For each row s: sx[s] = max|row| / 127 and
/// q[s,i] = clamp(rne(x[s,i] * (127 / max|row|)), -127, 127), where rne is
/// round-to-nearest-even of the single-precision product; an all-zero row
/// emits sx[s] = 0 and a zero q row. Inputs must be finite (quantize()
/// validates weights; activations are finite by construction). Scalar and
/// AVX2 backends run the identical operation sequence, so the quantized
/// plane and scales are bitwise backend-independent.
void quantize_rows_s8(const float* PET_KERN_RESTRICT x,
                      std::int8_t* PET_KERN_RESTRICT q,
                      float* PET_KERN_RESTRICT sx, std::int32_t batch,
                      std::int32_t in);

/// Elementwise tanh for the fp64 inference path: exactly std::tanh per
/// element (bitwise-matching the training-path activation), all backends.
void tanh_inplace_f64(double* v, std::int64_t n);

/// Elementwise tanh for the fp32/int8 inference paths: a clamped rational
/// minimax approximation (|error vs std::tanh| <= 2e-6 over all finite
/// inputs; NaN is outside the domain). Scalar and AVX2 apply the identical
/// operation sequence, so the result is bitwise backend-independent.
void tanh_inplace_f32(float* v, std::int64_t n);

}  // namespace pet::rl::kern
