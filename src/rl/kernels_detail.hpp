#pragma once
// Private declarations shared between kernels.cpp (scalar + dispatch) and
// kernels_avx2.cpp (the target("avx2")-attributed implementations). Not an
// installed/public header.

#include <cstdint>

namespace pet::rl::kern::detail {

// Defined in kernels_avx2.cpp. On non-x86-64 builds these are stubs that
// must never be reached (dispatch reports avx2 unsupported).
void gemm_bias_f64_avx2(const double* w, const double* b, const double* x,
                        double* y, std::int32_t batch, std::int32_t in,
                        std::int32_t out, const double* pack);
void gemm_bias_f32_avx2(const float* w, const float* b, const float* x,
                        float* y, std::int32_t batch, std::int32_t in,
                        std::int32_t out, const float* pack);
void gemm_s8i32_avx2(const std::int8_t* w, const std::int8_t* x,
                     std::int32_t* acc, std::int32_t batch, std::int32_t in,
                     std::int32_t out);
void quantize_rows_s8_avx2(const float* x, std::int8_t* q, float* sx,
                           std::int32_t batch, std::int32_t in);
void tanh_inplace_f32_avx2(float* v, std::int64_t n);
[[nodiscard]] bool cpu_has_avx2();

// Round-to-nearest-even via the 1.5 * 2^23 magic constant: adding then
// subtracting forces the mantissa to integer precision under the default
// rounding mode (exact for |x| <= 2^22; larger magnitudes land beyond the
// clamp either way). The AVX2 plane kernel runs the same add/sub pair.
inline constexpr float kQuantMagic = 12582912.0f;

/// One int8 quantization lane: mul, magic-constant rne, clamp in the float
/// domain, exact integer conversion. The scalar backend and every AVX2
/// remainder loop call this helper, so row tails match the vector body's
/// operation sequence bitwise.
[[nodiscard]] inline std::int8_t quantize_lane_s8(float v, float inv) {
  const float scaled = v * inv;
  const float r = (scaled + kQuantMagic) - kQuantMagic;
  float c = r < -127.0f ? -127.0f : r;
  c = c > 127.0f ? 127.0f : c;
  // pet-lint: allow(quantize-narrowing): audited rne+clamp lane shared by all
  // kernel backends; c is integral in [-127, 127] so the cast is exact
  return static_cast<std::int8_t>(static_cast<std::int32_t>(c));
}

// Rational tanh approximation coefficients (minimax fit on [-7.9053, 7.9053],
// the classic 13/6-degree odd/even pair). Both backends consume the same
// constants in the same operation order so lanes match scalar bitwise.
inline constexpr float kTanhClamp = 7.90531110763549805f;
inline constexpr float kTanhAlpha1 = 4.89352455891786e-03f;
inline constexpr float kTanhAlpha3 = 6.37261928875436e-04f;
inline constexpr float kTanhAlpha5 = 1.48572235717979e-05f;
inline constexpr float kTanhAlpha7 = 5.12229709037114e-08f;
inline constexpr float kTanhAlpha9 = -8.60467152213735e-11f;
inline constexpr float kTanhAlpha11 = 2.00018790482477e-13f;
inline constexpr float kTanhAlpha13 = -2.76076847742355e-16f;
inline constexpr float kTanhBeta0 = 4.89352518554385e-03f;
inline constexpr float kTanhBeta2 = 2.26843463243900e-03f;
inline constexpr float kTanhBeta4 = 1.18534705686654e-04f;
inline constexpr float kTanhBeta6 = 1.19825839466702e-06f;

}  // namespace pet::rl::kern::detail
