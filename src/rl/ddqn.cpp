#include "rl/ddqn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "rl/categorical.hpp"

namespace pet::rl {

DdqnAgent::DdqnAgent(const DdqnConfig& cfg,
                     std::shared_ptr<ReplayBuffer> replay,
                     std::int32_t agent_id)
    : cfg_(cfg),
      init_rng_(sim::derive_seed(cfg.seed, "ddqn-init") +
                static_cast<std::uint64_t>(agent_id)),
      replay_(std::move(replay)),
      agent_id_(agent_id),
      sample_rng_(sim::derive_seed(cfg.seed, "ddqn-sample") +
                  static_cast<std::uint64_t>(agent_id)) {
  assert(cfg.input_size > 0 && !cfg.head_sizes.empty());
  assert(replay_ != nullptr);
  for (const std::int32_t n : cfg.head_sizes) {
    std::vector<std::int32_t> sizes{cfg.input_size};
    sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
    sizes.push_back(n);
    online_.emplace_back(sizes, Activation::kRelu, init_rng_);
    target_.emplace_back(sizes, Activation::kRelu, init_rng_);
  }
  for (auto& net : online_) net.collect(online_refs_);
  for (auto& net : target_) net.collect(target_refs_);
  opt_ = std::make_unique<Adam>(
      online_refs_,
      AdamConfig{.lr = cfg.lr, .max_grad_norm = cfg.max_grad_norm});
  sync_target();
}

double DdqnAgent::epsilon() const {
  const double frac =
      std::min(1.0, static_cast<double>(observe_steps_) /
                        std::max(1, cfg_.epsilon_decay_steps));
  return cfg_.epsilon_start + frac * (cfg_.epsilon_end - cfg_.epsilon_start);
}

void DdqnAgent::q_values(const std::vector<Mlp>& nets,
                         std::span<const double> state,
                         std::vector<std::vector<double>>& q,
                         std::vector<Mlp::Cache>* caches) const {
  q.resize(nets.size());
  if (caches != nullptr) caches->resize(nets.size());
  for (std::size_t h = 0; h < nets.size(); ++h) {
    q[h] = nets[h].forward(state, caches != nullptr ? &(*caches)[h] : nullptr);
  }
}

std::vector<std::int32_t> DdqnAgent::act(std::span<const double> state,
                                         sim::Rng& rng) {
  std::vector<std::vector<double>> q;
  q_values(online_, state, q);
  std::vector<std::int32_t> actions(q.size());
  const double eps = epsilon();
  for (std::size_t h = 0; h < q.size(); ++h) {
    actions[h] = rng.bernoulli(eps)
                     ? static_cast<std::int32_t>(rng.uniform_int(q[h].size()))
                     : argmax(q[h]);
  }
  return actions;
}

std::vector<std::int32_t> DdqnAgent::act_greedy(
    std::span<const double> state) const {
  std::vector<std::vector<double>> q;
  q_values(online_, state, q);
  std::vector<std::int32_t> actions(q.size());
  for (std::size_t h = 0; h < q.size(); ++h) actions[h] = argmax(q[h]);
  return actions;
}

void DdqnAgent::observe(DqnTransition t) {
  ++observe_steps_;
  replay_->push(std::move(t), agent_id_);
}

void DdqnAgent::train_step() {
  if (replay_->size() < static_cast<std::size_t>(cfg_.batch_size)) return;
  const auto idx = replay_->sample_indices(
      static_cast<std::size_t>(cfg_.batch_size), sample_rng_);
  const double inv_b = 1.0 / static_cast<double>(idx.size());

  for (auto& net : online_) net.zero_grad();

  for (const std::size_t i : idx) {
    const DqnTransition& tr = replay_->at(i);
    // Double-DQN target: online net picks the argmax, target net scores it.
    std::vector<std::vector<double>> q_next_online;
    std::vector<std::vector<double>> q_next_target;
    q_values(online_, tr.next_state, q_next_online);
    q_values(target_, tr.next_state, q_next_target);

    std::vector<Mlp::Cache> caches;
    std::vector<std::vector<double>> q_cur;
    q_values(online_, tr.state, q_cur, &caches);

    for (std::size_t h = 0; h < online_.size(); ++h) {
      const std::int32_t best_next = argmax(q_next_online[h]);
      const double target =
          tr.reward + cfg_.gamma * q_next_target[h][best_next];
      const double pred = q_cur[h][tr.actions[h]];
      const double err = pred - target;
      std::vector<double> dq(q_cur[h].size(), 0.0);
      dq[tr.actions[h]] = 2.0 * err * inv_b;
      online_[h].backward(tr.state, caches[h], dq);
    }
  }
  opt_->step();
  ++train_steps_;
  if (train_steps_ % cfg_.target_sync_interval == 0) sync_target();
}

void DdqnAgent::sync_target() {
  restore_params(target_refs_, snapshot_params(online_refs_));
}

void DdqnAgent::set_lr(double lr) { opt_->set_lr(lr); }
double DdqnAgent::lr() const { return opt_->lr(); }

std::vector<double> DdqnAgent::weights() const {
  return snapshot_params(online_refs_);
}

std::size_t DdqnAgent::num_params() const { return online_refs_.size(); }

bool DdqnAgent::set_weights(std::span<const double> values) {
  if (values.size() != online_refs_.size()) {
    std::fprintf(stderr,
                 "  [ddqn] ERROR: weight vector has %zu values but the "
                 "network has %zu parameters; keeping current model\n",
                 values.size(), online_refs_.size());
    return false;
  }
  restore_params(online_refs_, values);
  sync_target();
  return true;
}

void DdqnAgent::save_state(sim::ByteSink& out) const {
  out.i32(cfg_.input_size);
  out.i32_vec(cfg_.head_sizes);
  out.i32_vec(cfg_.hidden);
  out.u64(online_refs_.size());
  out.f64_vec(snapshot_params(online_refs_));
  out.f64_vec(snapshot_params(target_refs_));
  opt_->save_state(out);
  out.i64(observe_steps_);
  out.i64(train_steps_);
  sim::save_rng(out, sample_rng_);
}

bool DdqnAgent::load_state(sim::ByteSource& in) {
  const std::int32_t input_size = in.i32();
  const std::vector<std::int32_t> head_sizes = in.i32_vec();
  const std::vector<std::int32_t> hidden = in.i32_vec();
  const std::uint64_t num = in.u64();
  if (!in.ok() || input_size != cfg_.input_size ||
      head_sizes != cfg_.head_sizes || hidden != cfg_.hidden ||
      num != online_refs_.size()) {
    return false;
  }
  const std::vector<double> online = in.f64_vec();
  const std::vector<double> target = in.f64_vec();
  if (!in.ok() || online.size() != online_refs_.size() ||
      target.size() != target_refs_.size()) {
    return false;
  }
  if (!opt_->load_state(in)) return false;
  const std::int64_t observe_steps = in.i64();
  const std::int64_t train_steps = in.i64();
  if (!in.ok()) return false;
  if (!load_rng(in, sample_rng_)) return false;
  restore_params(online_refs_, online);
  restore_params(target_refs_, target);
  observe_steps_ = observe_steps;
  train_steps_ = train_steps;
  return true;
}

}  // namespace pet::rl
