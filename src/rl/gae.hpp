#pragma once
// Generalized Advantage Estimation (Schulman et al. 2015), Eq. (9)/(10) of
// the paper: A_t = sum_k (gamma*lambda)^k delta_{t+k},
// delta_t = r_t + gamma V(s_{t+1}) - V(s_t).

#include <cassert>
#include <span>
#include <vector>

namespace pet::rl {

struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  // advantage + value (critic regression target)
};

/// `values` holds V(s_0..s_{T-1}); `bootstrap` is V(s_T) for the state after
/// the last transition (0 for terminal episodes).
[[nodiscard]] inline GaeResult compute_gae(std::span<const double> rewards,
                                           std::span<const double> values,
                                           double bootstrap, double gamma,
                                           double lambda) {
  assert(rewards.size() == values.size());
  const std::size_t n = rewards.size();
  GaeResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  double gae = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const double next_v = (i + 1 < n) ? values[i + 1] : bootstrap;
    const double delta = rewards[i] + gamma * next_v - values[i];
    gae = delta + gamma * lambda * gae;
    out.advantages[i] = gae;
    out.returns[i] = gae + values[i];
  }
  return out;
}

/// In-place standardization to zero mean / unit variance (PPO convention);
/// no-op for fewer than two samples or ~zero variance.
void normalize(std::span<double> xs);

}  // namespace pet::rl
