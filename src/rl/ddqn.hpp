#pragma once
// Double DQN (van Hasselt et al. 2016) with action branching: one Q-value
// head per action dimension, the factored-discrete analogue of PET's
// categorical heads. This is the learning algorithm ACC runs; unlike IPPO
// it trains from (optionally global/shared) experience replay.

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/adam.hpp"
#include "rl/mlp.hpp"
#include "rl/replay.hpp"
#include "sim/checkpoint.hpp"
#include "sim/rng.hpp"

namespace pet::rl {

struct DdqnConfig {
  std::int32_t input_size = 0;
  std::vector<std::int32_t> head_sizes;
  std::vector<std::int32_t> hidden = {64, 64};
  double lr = 1e-3;
  double gamma = 0.99;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::int32_t epsilon_decay_steps = 2000;
  std::int32_t batch_size = 32;
  std::int32_t target_sync_interval = 200;  // gradient steps
  double max_grad_norm = 1.0;
  std::uint64_t seed = 0;
};

class DdqnAgent {
 public:
  /// `replay` may be shared between agents (ACC's global experience
  /// replay) or exclusive.
  DdqnAgent(const DdqnConfig& cfg, std::shared_ptr<ReplayBuffer> replay,
            std::int32_t agent_id);

  /// Epsilon-greedy action (one index per head).
  [[nodiscard]] std::vector<std::int32_t> act(std::span<const double> state,
                                              sim::Rng& rng);
  [[nodiscard]] std::vector<std::int32_t> act_greedy(
      std::span<const double> state) const;

  /// Store a transition and advance the epsilon schedule.
  void observe(DqnTransition t);

  /// One gradient step from a replay minibatch (no-op until the buffer has
  /// at least one batch).
  void train_step();

  [[nodiscard]] double epsilon() const;
  [[nodiscard]] std::int64_t train_steps() const { return train_steps_; }
  [[nodiscard]] ReplayBuffer& replay() { return *replay_; }
  [[nodiscard]] std::int32_t agent_id() const { return agent_id_; }

  [[nodiscard]] std::vector<double> weights() const;
  /// Installs a full online-net snapshot (and syncs the target net).
  /// Returns false and keeps the current model on a size mismatch.
  [[nodiscard]] bool set_weights(std::span<const double> values);
  [[nodiscard]] std::size_t num_params() const;

  void set_lr(double lr);
  [[nodiscard]] double lr() const;

  // --- checkpointing (pet.ckpt/1 section payloads) --------------------------
  /// Online + target parameters, optimizer trajectory, epsilon-schedule
  /// counters, and the replay-sampling RNG position. The replay buffer is
  /// shared between agents and checkpointed separately by its owner.
  void save_state(sim::ByteSink& out) const;
  /// Restores a save_state payload; false (agent untouched) on an
  /// architecture mismatch or corrupted payload.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  void sync_target();
  void q_values(const std::vector<Mlp>& nets, std::span<const double> state,
                std::vector<std::vector<double>>& q,
                std::vector<Mlp::Cache>* caches = nullptr) const;

  DdqnConfig cfg_;
  sim::Rng init_rng_;
  std::vector<Mlp> online_;  // one net per head
  std::vector<Mlp> target_;
  ParamRefs online_refs_;
  ParamRefs target_refs_;
  std::unique_ptr<Adam> opt_;
  std::shared_ptr<ReplayBuffer> replay_;
  std::int32_t agent_id_;
  std::int64_t observe_steps_ = 0;
  std::int64_t train_steps_ = 0;
  sim::Rng sample_rng_;
};

}  // namespace pet::rl
