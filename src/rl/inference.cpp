#include "rl/inference.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "rl/categorical.hpp"
#include "rl/kernels.hpp"

// NOTE: this translation unit is the audited fp64 -> int8 narrowing site in
// src/rl (pet_lint rule `quantize-narrowing`). Every conversion here goes
// through an explicit clamp to [-127, 127] after round-to-nearest, and
// quantize() rejects non-finite weights before any cast runs. The only other
// narrowing cast lives in kern::detail::quantize_lane_s8 (the fp32
// activation quantizer shared by both kernel backends), suppressed inline
// with the same clamp-audit justification.

namespace pet::rl {

namespace {

constexpr std::uint8_t kFormatVersion = 1;

[[nodiscard]] bool all_finite(std::span<const double> values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Round-to-nearest-even int8 quantization with saturation. `inv` is
/// 127 / max|row| (finite by construction: callers skip all-zero rows).
[[nodiscard]] std::int8_t quantize_one(double v, double inv) {
  const auto q = static_cast<std::int32_t>(std::lrint(v * inv));
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

/// fp32 payload codec: IEEE-754 bit patterns through the u32 field, so the
/// round-trip is exact (including signed zeros and subnormals).
void put_f32_vec(sim::ByteSink& out, const std::vector<float>& v) {
  out.u64(v.size());
  for (const float f : v) out.u32(std::bit_cast<std::uint32_t>(f));
}

[[nodiscard]] std::vector<float> get_f32_vec(sim::ByteSource& in) {
  const std::uint64_t n = in.u64();
  std::vector<float> v;
  if (!in.ok()) return v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    v.push_back(std::bit_cast<float>(in.u32()));
  }
  return v;
}

void put_s8_vec(sim::ByteSink& out, const std::vector<std::int8_t>& v) {
  out.u64(v.size());
  for (const std::int8_t q : v) out.u8(static_cast<std::uint8_t>(q));
}

[[nodiscard]] std::vector<std::int8_t> get_s8_vec(sim::ByteSource& in) {
  const std::uint64_t n = in.u64();
  std::vector<std::int8_t> v;
  if (!in.ok()) return v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    v.push_back(static_cast<std::int8_t>(in.u8()));
  }
  return v;
}

void relu_inplace_f64(double* v, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) v[i] = v[i] > 0.0 ? v[i] : 0.0;
}

void relu_inplace_f32(float* v, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) v[i] = v[i] > 0.0f ? v[i] : 0.0f;
}

}  // namespace

const char* infer_precision_name(InferPrecision precision) {
  switch (precision) {
    case InferPrecision::kFp64:
      return "fp64";
    case InferPrecision::kFp32:
      return "fp32";
    case InferPrecision::kInt8:
      return "int8";
  }
  return "?";
}

const char* infer_mode_name(InferMode mode) {
  switch (mode) {
    case InferMode::kDirect:
      return "direct";
    case InferMode::kFp64:
      return "fp64";
    case InferMode::kFp32:
      return "fp32";
    case InferMode::kInt8:
      return "int8";
  }
  return "?";
}

InferPrecision infer_mode_precision(InferMode mode) {
  switch (mode) {
    case InferMode::kFp32:
      return InferPrecision::kFp32;
    case InferMode::kInt8:
      return InferPrecision::kInt8;
    case InferMode::kDirect:
    case InferMode::kFp64:
      break;
  }
  return InferPrecision::kFp64;
}

// ---------------------------------------------------------------------------
// InferenceModel
// ---------------------------------------------------------------------------

bool InferenceModel::quantize(const Mlp& net, InferPrecision precision) {
  // Validate before mutating anything: a snapshot with NaN/Inf weights must
  // never replace a good one (the server keeps serving the old weights and
  // reports the failure up).
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    if (!all_finite(net.layer(l).weights()) ||
        !all_finite(net.layer(l).biases())) {
      return false;
    }
  }

  precision_ = precision;
  act_ = net.activation();
  sizes_ = net.sizes();
  layers_.resize(net.num_layers());
  max_width_ = 0;
  for (const std::int32_t s : sizes_) max_width_ = std::max(max_width_, s);

  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Linear& src = net.layer(l);
    Layer& dst = layers_[l];
    dst.in = src.in_size();
    dst.out = src.out_size();
    const std::span<const double> w = src.weights();
    const std::span<const double> b = src.biases();
    switch (precision) {
      case InferPrecision::kFp64:
        dst.wd.assign(w.begin(), w.end());
        dst.bd.assign(b.begin(), b.end());
        break;
      case InferPrecision::kFp32:
        dst.wf.resize(w.size());
        for (std::size_t i = 0; i < w.size(); ++i) {
          dst.wf[i] = static_cast<float>(w[i]);
        }
        dst.bf.resize(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) {
          dst.bf[i] = static_cast<float>(b[i]);
        }
        break;
      case InferPrecision::kInt8: {
        dst.wq.resize(w.size());
        dst.scale.resize(static_cast<std::size_t>(dst.out));
        for (std::int32_t o = 0; o < dst.out; ++o) {
          const double* row = &w[static_cast<std::size_t>(o) * dst.in];
          double max_abs = 0.0;
          for (std::int32_t i = 0; i < dst.in; ++i) {
            max_abs = std::max(max_abs, std::abs(row[i]));
          }
          std::int8_t* qrow = &dst.wq[static_cast<std::size_t>(o) * dst.in];
          if (max_abs == 0.0) {
            dst.scale[static_cast<std::size_t>(o)] = 0.0f;
            std::fill_n(qrow, dst.in, std::int8_t{0});
            continue;
          }
          const double inv = 127.0 / max_abs;
          dst.scale[static_cast<std::size_t>(o)] =
              static_cast<float>(max_abs / 127.0);
          for (std::int32_t i = 0; i < dst.in; ++i) {
            qrow[i] = quantize_one(row[i], inv);
          }
        }
        dst.bf.resize(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) {
          dst.bf[i] = static_cast<float>(b[i]);
        }
        break;
      }
    }
  }
  ready_ = true;
  return true;
}

void InferenceModel::reserve(std::int32_t batch) {
  if (!ready_ || batch <= 0) return;
  const std::size_t plane =
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(max_width_);
  switch (precision_) {
    case InferPrecision::kFp64:
      buf_d_[0].reserve(plane);
      buf_d_[1].reserve(plane);
      break;
    case InferPrecision::kFp32:
      buf_f_[0].reserve(plane);
      buf_f_[1].reserve(plane);
      break;
    case InferPrecision::kInt8:
      buf_f_[0].reserve(plane);
      buf_f_[1].reserve(plane);
      xq_.reserve(plane);
      acc_.reserve(plane);
      sx_.reserve(static_cast<std::size_t>(batch));
      break;
  }
}

void InferenceModel::forward_batch(std::span<const double> x,
                                   std::int32_t batch, std::span<double> y) {
  assert(ready_);
  assert(x.size() == static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(input_size()));
  assert(y.size() == static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(output_size()));
  switch (precision_) {
    case InferPrecision::kFp64:
      forward_f64(x, batch, y);
      break;
    case InferPrecision::kFp32:
      forward_f32(x, batch, y);
      break;
    case InferPrecision::kInt8:
      forward_s8(x, batch, y);
      break;
  }
}

void InferenceModel::forward_f64(std::span<const double> x, std::int32_t batch,
                                 std::span<double> y) {
  const double* src = x.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_last = (l + 1 == layers_.size());
    const std::int64_t n = static_cast<std::int64_t>(batch) * layer.out;
    double* dst;
    if (is_last) {
      dst = y.data();
    } else {
      buf_d_[l % 2].resize(static_cast<std::size_t>(n));
      dst = buf_d_[l % 2].data();
    }
    kern::gemm_bias_f64(layer.wd.data(), layer.bd.data(), src, dst, batch,
                        layer.in, layer.out);
    if (!is_last) {
      if (act_ == Activation::kTanh) {
        kern::tanh_inplace_f64(dst, n);
      } else {
        relu_inplace_f64(dst, n);
      }
      src = dst;
    }
  }
}

void InferenceModel::forward_f32(std::span<const double> x, std::int32_t batch,
                                 std::span<double> y) {
  // Inputs narrow once at entry; the final layer widens back to double.
  buf_f_[0].resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    buf_f_[0][i] = static_cast<float>(x[i]);
  }
  const float* src = buf_f_[0].data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_last = (l + 1 == layers_.size());
    const std::int64_t n = static_cast<std::int64_t>(batch) * layer.out;
    // Ping-pong buffers offset by one so layer 0 never overwrites its own
    // input plane (buf_f_[0] holds the narrowed x).
    std::vector<float>& out_buf = buf_f_[(l + 1) % 2];
    out_buf.resize(static_cast<std::size_t>(n));
    float* dst = out_buf.data();
    kern::gemm_bias_f32(layer.wf.data(), layer.bf.data(), src, dst, batch,
                        layer.in, layer.out);
    if (is_last) {
      for (std::int64_t i = 0; i < n; ++i) {
        y[static_cast<std::size_t>(i)] = static_cast<double>(dst[i]);
      }
      return;
    }
    if (act_ == Activation::kTanh) {
      kern::tanh_inplace_f32(dst, n);
    } else {
      relu_inplace_f32(dst, n);
    }
    src = dst;
  }
}

void InferenceModel::forward_s8(std::span<const double> x, std::int32_t batch,
                                std::span<double> y) {
  // Activations stay fp32 between layers; each layer re-quantizes its input
  // plane with a per-sample dynamic scale (max|row| / 127) through
  // kern::quantize_rows_s8, runs the exact int32 GEMM and applies
  // bias + (row scale * sample scale) in fp32.
  buf_f_[0].resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    buf_f_[0][i] = static_cast<float>(x[i]);
  }
  const float* src = buf_f_[0].data();
  sx_.resize(static_cast<std::size_t>(batch));
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_last = (l + 1 == layers_.size());
    const std::size_t in_plane =
        static_cast<std::size_t>(batch) * static_cast<std::size_t>(layer.in);
    xq_.resize(in_plane);
    kern::quantize_rows_s8(src, xq_.data(), sx_.data(), batch, layer.in);
    const std::int64_t n = static_cast<std::int64_t>(batch) * layer.out;
    acc_.resize(static_cast<std::size_t>(n));
    kern::gemm_s8i32(layer.wq.data(), xq_.data(), acc_.data(), batch, layer.in,
                     layer.out);
    std::vector<float>& out_buf = buf_f_[(l + 1) % 2];
    out_buf.resize(static_cast<std::size_t>(n));
    float* dst = out_buf.data();
    for (std::int32_t s = 0; s < batch; ++s) {
      const std::int32_t* arow = &acc_[static_cast<std::size_t>(s) * layer.out];
      float* yrow = dst + static_cast<std::size_t>(s) * layer.out;
      const float sxs = sx_[static_cast<std::size_t>(s)];
      for (std::int32_t o = 0; o < layer.out; ++o) {
        const float m = layer.scale[static_cast<std::size_t>(o)] * sxs;
        yrow[o] = layer.bf[static_cast<std::size_t>(o)] +
                  m * static_cast<float>(arow[o]);
      }
    }
    if (is_last) {
      for (std::int64_t i = 0; i < n; ++i) {
        y[static_cast<std::size_t>(i)] = static_cast<double>(dst[i]);
      }
      return;
    }
    if (act_ == Activation::kTanh) {
      kern::tanh_inplace_f32(dst, n);
    } else {
      relu_inplace_f32(dst, n);
    }
    src = dst;
  }
}

std::vector<double> InferenceModel::dequantized_weights(std::size_t l) const {
  const Layer& layer = layers_[l];
  std::vector<double> w(static_cast<std::size_t>(layer.in) *
                        static_cast<std::size_t>(layer.out));
  switch (precision_) {
    case InferPrecision::kFp64:
      w.assign(layer.wd.begin(), layer.wd.end());
      break;
    case InferPrecision::kFp32:
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = static_cast<double>(layer.wf[i]);
      }
      break;
    case InferPrecision::kInt8:
      for (std::int32_t o = 0; o < layer.out; ++o) {
        const auto s =
            static_cast<double>(layer.scale[static_cast<std::size_t>(o)]);
        for (std::int32_t i = 0; i < layer.in; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(o) * layer.in + static_cast<std::size_t>(i);
          w[idx] = s * static_cast<double>(layer.wq[idx]);
        }
      }
      break;
  }
  return w;
}

std::vector<double> InferenceModel::dequantized_biases(std::size_t l) const {
  const Layer& layer = layers_[l];
  std::vector<double> b(static_cast<std::size_t>(layer.out));
  if (precision_ == InferPrecision::kFp64) {
    b.assign(layer.bd.begin(), layer.bd.end());
  } else {
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<double>(layer.bf[i]);
    }
  }
  return b;
}

double InferenceModel::weight_row_scale(std::size_t l, std::int32_t row) const {
  assert(precision_ == InferPrecision::kInt8);
  return static_cast<double>(layers_[l].scale[static_cast<std::size_t>(row)]);
}

void InferenceModel::save_state(sim::ByteSink& out) const {
  out.u8(kFormatVersion);
  out.u8(static_cast<std::uint8_t>(precision_));
  out.u8(act_ == Activation::kTanh ? 0 : 1);
  out.i32_vec(sizes_);
  for (const Layer& layer : layers_) {
    out.i32(layer.in);
    out.i32(layer.out);
    switch (precision_) {
      case InferPrecision::kFp64:
        out.f64_vec(layer.wd);
        out.f64_vec(layer.bd);
        break;
      case InferPrecision::kFp32:
        put_f32_vec(out, layer.wf);
        put_f32_vec(out, layer.bf);
        break;
      case InferPrecision::kInt8:
        put_s8_vec(out, layer.wq);
        put_f32_vec(out, layer.scale);
        put_f32_vec(out, layer.bf);
        break;
    }
  }
}

bool InferenceModel::load_state(sim::ByteSource& in) {
  // Decode into locals first: *this stays untouched unless the whole
  // payload validates (format version, shape consistency, byte bounds).
  const std::uint8_t version = in.u8();
  const std::uint8_t precision_byte = in.u8();
  const std::uint8_t act_byte = in.u8();
  std::vector<std::int32_t> sizes = in.i32_vec();
  if (!in.ok() || version != kFormatVersion || precision_byte > 2 ||
      act_byte > 1 || sizes.size() < 2) {
    return false;
  }
  const auto precision = static_cast<InferPrecision>(precision_byte);
  std::vector<Layer> layers(sizes.size() - 1);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    Layer& layer = layers[l];
    layer.in = in.i32();
    layer.out = in.i32();
    if (!in.ok() || layer.in != sizes[l] || layer.out != sizes[l + 1] ||
        layer.in <= 0 || layer.out <= 0) {
      return false;
    }
    const std::size_t w_count = static_cast<std::size_t>(layer.in) *
                                static_cast<std::size_t>(layer.out);
    const auto b_count = static_cast<std::size_t>(layer.out);
    switch (precision) {
      case InferPrecision::kFp64:
        layer.wd = in.f64_vec();
        layer.bd = in.f64_vec();
        if (layer.wd.size() != w_count || layer.bd.size() != b_count) {
          return false;
        }
        break;
      case InferPrecision::kFp32:
        layer.wf = get_f32_vec(in);
        layer.bf = get_f32_vec(in);
        if (layer.wf.size() != w_count || layer.bf.size() != b_count) {
          return false;
        }
        break;
      case InferPrecision::kInt8:
        layer.wq = get_s8_vec(in);
        layer.scale = get_f32_vec(in);
        layer.bf = get_f32_vec(in);
        if (layer.wq.size() != w_count || layer.scale.size() != b_count ||
            layer.bf.size() != b_count) {
          return false;
        }
        break;
    }
    if (!in.ok()) return false;
  }
  precision_ = precision;
  act_ = act_byte == 0 ? Activation::kTanh : Activation::kRelu;
  sizes_ = std::move(sizes);
  layers_ = std::move(layers);
  max_width_ = 0;
  for (const std::int32_t s : sizes_) max_width_ = std::max(max_width_, s);
  ready_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// PolicyServer
// ---------------------------------------------------------------------------

bool PolicyServer::install(const PpoAgent& agent, InferPrecision precision) {
  heads_.resize(agent.num_heads());
  head_sizes_.resize(agent.num_heads());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    if (!heads_[h].quantize(agent.actor_head(h), precision)) {
      ready_ = false;
      return false;
    }
    head_sizes_[h] = agent.actor_head(h).output_size();
  }
  precision_ = precision;
  version_ = agent.weights_version();
  ready_ = !heads_.empty();
  return ready_;
}

bool PolicyServer::refresh(const PpoAgent& agent) {
  if (!ready_) return false;
  if (agent.weights_version() == version_) return true;
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    if (!heads_[h].quantize(agent.actor_head(h), precision_)) {
      // Keep serving the last good snapshot; the caller decides whether to
      // fall back to the direct path (guardrails own the poisoned policy).
      return false;
    }
  }
  version_ = agent.weights_version();
  return true;
}

void PolicyServer::reserve(std::int32_t batch) {
  std::int32_t max_head = 0;
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    heads_[h].reserve(batch);
    max_head = std::max(max_head, head_sizes_[h]);
  }
  logits_.reserve(static_cast<std::size_t>(batch) *
                  static_cast<std::size_t>(max_head));
}

void PolicyServer::serve_greedy(std::span<const double> states,
                                std::int32_t batch,
                                std::span<std::int32_t> actions) {
  assert(ready_);
  assert(actions.size() ==
         static_cast<std::size_t>(batch) * heads_.size());
  const std::size_t num_heads = heads_.size();
  for (std::size_t h = 0; h < num_heads; ++h) {
    const auto nh = static_cast<std::size_t>(head_sizes_[h]);
    logits_.resize(static_cast<std::size_t>(batch) * nh);
    heads_[h].forward_batch(states, batch, logits_);
    for (std::int32_t s = 0; s < batch; ++s) {
      const std::span<const double> row(
          &logits_[static_cast<std::size_t>(s) * nh], nh);
      actions[static_cast<std::size_t>(s) * num_heads + h] = argmax(row);
    }
  }
}

}  // namespace pet::rl
