#include "exp/replica_runner.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/controller.hpp"
#include "core/pet_agent.hpp"
#include "exp/scheme.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"

namespace pet::exp {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

void fold(std::uint64_t& h, double v) { fold(h, std::bit_cast<std::uint64_t>(v)); }

void fold_harvest(std::uint64_t& h, const core::PetAgent::Harvest& harvest) {
  fold(h, static_cast<std::uint64_t>(harvest.rollout.size()));
  fold(h, harvest.bootstrap);
  for (const rl::Transition& t : harvest.rollout.items()) {
    for (const std::int32_t a : t.actions) {
      fold(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)));
    }
    fold(h, t.log_prob);
    fold(h, t.value);
    fold(h, t.reward);
  }
}

}  // namespace

struct ReplicaRunner::ReplicaResult {
  std::vector<core::PetAgent::Harvest> harvests;  // indexed by agent
};

ReplicaRunner::ReplicaRunner(const ScenarioConfig& scenario,
                             ReplicaRunnerConfig cfg)
    : scenario_(scenario), cfg_(cfg) {
  if (cfg_.replicas < 1) {
    throw std::invalid_argument("ReplicaRunner: replicas must be >= 1");
  }
  if (scenario_.scheme != Scheme::kPet &&
      scenario_.scheme != Scheme::kPetAblation) {
    throw std::invalid_argument(
        "ReplicaRunner: merged IPPO updates require a PET scheme");
  }
  // The central model holder is a full Experiment whose scheduler never
  // advances: it exists to own one policy per switch with the exact shapes
  // and seeds a sequential run would use.
  ScenarioConfig central = scenario_;
  central.pet_shared_policy = false;
  central_ = std::make_unique<Experiment>(central);
}

ReplicaRunner::~ReplicaRunner() = default;

std::size_t ReplicaRunner::num_agents() const {
  return central_->pet()->num_agents();
}

std::vector<double> ReplicaRunner::agent_weights(std::size_t i) const {
  return central_->pet()->agent(i).policy().weights();
}

std::vector<double> ReplicaRunner::all_weights() const {
  std::vector<double> all;
  for (std::size_t i = 0; i < num_agents(); ++i) {
    const std::vector<double> w = agent_weights(i);
    all.insert(all.end(), w.begin(), w.end());
  }
  return all;
}

ReplicaRunner::ReplicaResult ReplicaRunner::run_replica(
    std::int32_t r, std::int32_t e,
    const std::vector<std::vector<double>>& weights) const {
  // Everything stochastic inside the replica hangs off this seed chain, so
  // the replica's trajectory is a pure function of (seed, r, e).
  ScenarioConfig cfg = scenario_;
  cfg.seed = sim::Stream(scenario_.seed)
                 .child("replica")
                 .child(static_cast<std::uint64_t>(r))
                 .child(static_cast<std::uint64_t>(e))
                 .seed();
  cfg.pet_shared_policy = false;
  Experiment ex(cfg);
  core::PetController* pet = ex.pet();
  const std::size_t n = pet->num_agents();
  for (std::size_t i = 0; i < n; ++i) {
    core::PetAgent& agent = pet->agent(i);
    // Central and replica agents are built from the same config, so a
    // weight-count mismatch here is a programming error.
    const bool ok = agent.policy().set_weights(weights[i]);
    assert(ok && "replica policy must match the central architecture");
    static_cast<void>(ok);
    agent.set_local_updates(false);  // experience is merged centrally
  }
  const sim::Time len = cfg_.episode_length > sim::Time::zero()
                            ? cfg_.episode_length
                            : scenario_.pretrain;
  ex.run_until(len);
  ReplicaResult res;
  res.harvests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.harvests.push_back(pet->agent(i).harvest_rollout());
  }
  return res;
}

ReplicaRunner::EpisodeStats ReplicaRunner::run_episode() {
  const std::int32_t e = next_episode_++;
  core::PetController* pet = central_->pet();
  const std::size_t n = pet->num_agents();

  std::vector<std::vector<double>> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = pet->agent(i).policy().weights();
  }

  const auto replicas = static_cast<std::size_t>(cfg_.replicas);
  std::vector<std::optional<ReplicaResult>> results(replicas);
  std::vector<std::exception_ptr> errors(replicas);

  unsigned threads = cfg_.threads > 0
                         ? static_cast<unsigned>(cfg_.threads)
                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(replicas));

  // Work distribution is an atomic ticket counter: which thread simulates
  // which replica is scheduling noise — results land in per-replica slots
  // and are merged in replica order below.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t r = next.fetch_add(1); r < replicas;
         r = next.fetch_add(1)) {
      // Tag this thread's PET_LOG lines with the replica it simulates so
      // interleaved worker output stays attributable.
      sim::set_log_replica_id(static_cast<std::int32_t>(r));
      try {
        results[r] = run_replica(static_cast<std::int32_t>(r), e, weights);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    }
    sim::set_log_replica_id(-1);
  };
  {
    PET_PROFILE_SCOPE(profiler_, "episode.simulate");
    if (threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Merge: per agent, the replicas' trajectories become GAE-isolated slices
  // of one central PPO update, consumed in replica order.
  PET_PROFILE_SCOPE(profiler_, "episode.merge");
  EpisodeStats st;
  st.episode = e;
  // Chain across episodes so a multi-episode digest covers the whole run.
  std::uint64_t digest = digest_ ^ kFnvOffset;
  double reward_sum = 0.0;
  std::size_t updated_agents = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<rl::PpoAgent::RolloutSlice> slices;
    slices.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
      const core::PetAgent::Harvest& h = results[r]->harvests[i];
      fold_harvest(digest, h);
      if (h.rollout.empty()) continue;
      slices.push_back({&h.rollout, h.bootstrap});
      st.transitions += h.rollout.size();
      for (const rl::Transition& t : h.rollout.items()) {
        reward_sum += t.reward;
      }
    }
    if (slices.empty()) continue;
    const rl::PpoAgent::UpdateStats up =
        pet->agent(i).policy().update_merged(slices);
    st.policy_loss += up.policy_loss;
    st.value_loss += up.value_loss;
    st.entropy += up.entropy;
    ++updated_agents;
  }
  if (updated_agents > 0) {
    const auto inv = 1.0 / static_cast<double>(updated_agents);
    st.policy_loss *= inv;
    st.value_loss *= inv;
    st.entropy *= inv;
  }
  if (st.transitions > 0) {
    st.mean_reward = reward_sum / static_cast<double>(st.transitions);
  }
  digest_ = digest;
  history_.push_back(st);
  return st;
}

void ReplicaRunner::save_state(sim::Checkpoint& ckpt) const {
  sim::ByteSink meta;
  meta.u64(scenario_.seed);
  meta.u8(static_cast<std::uint8_t>(scenario_.scheme));
  meta.i32(cfg_.replicas);
  meta.u64(num_agents());
  meta.i32(next_episode_);
  meta.u64(digest_);
  meta.u64(history_.size());
  for (const EpisodeStats& st : history_) {
    meta.i32(st.episode);
    meta.f64(st.mean_reward);
    meta.u64(st.transitions);
    meta.f64(st.policy_loss);
    meta.f64(st.value_loss);
    meta.f64(st.entropy);
  }
  ckpt.set_section("replica-runner/meta", meta.take());
  for (std::size_t i = 0; i < num_agents(); ++i) {
    sim::ByteSink agent;
    central_->pet()->agent(i).policy().save_state(agent);
    ckpt.set_section("replica-runner/agent." + std::to_string(i),
                     agent.take());
  }
}

bool ReplicaRunner::load_state(const sim::Checkpoint& ckpt) {
  const std::vector<std::uint8_t>* meta_bytes =
      ckpt.section("replica-runner/meta");
  if (meta_bytes == nullptr) return false;
  sim::ByteSource meta(*meta_bytes);
  const std::uint64_t seed = meta.u64();
  const std::uint8_t scheme = meta.u8();
  const std::int32_t replicas = meta.i32();
  const std::uint64_t agents = meta.u64();
  // The fingerprint ties a checkpoint to the exact scenario that produced
  // it: resuming under a different seed/scheme/replica-count would continue
  // a *different* run and silently break the bitwise-resume guarantee.
  if (!meta.ok() || seed != scenario_.seed ||
      scheme != static_cast<std::uint8_t>(scenario_.scheme) ||
      replicas != cfg_.replicas || agents != num_agents()) {
    return false;
  }
  const std::int32_t next_episode = meta.i32();
  const std::uint64_t digest = meta.u64();
  const std::uint64_t count = meta.u64();
  if (!meta.ok() || next_episode < 0) return false;
  std::vector<EpisodeStats> history;
  history.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EpisodeStats st;
    st.episode = meta.i32();
    st.mean_reward = meta.f64();
    st.transitions = static_cast<std::size_t>(meta.u64());
    st.policy_loss = meta.f64();
    st.value_loss = meta.f64();
    st.entropy = meta.f64();
    history.push_back(st);
  }
  if (!meta.at_end()) return false;
  for (std::size_t i = 0; i < num_agents(); ++i) {
    const std::vector<std::uint8_t>* agent_bytes =
        ckpt.section("replica-runner/agent." + std::to_string(i));
    if (agent_bytes == nullptr) return false;
    sim::ByteSource agent(*agent_bytes);
    if (!central_->pet()->agent(i).policy().load_state(agent)) return false;
  }
  next_episode_ = next_episode;
  digest_ = digest;
  history_ = std::move(history);
  return true;
}

bool ReplicaRunner::save_checkpoint(const std::string& path) const {
  sim::Checkpoint ckpt;
  save_state(ckpt);
  return ckpt.write_file(path);
}

bool ReplicaRunner::load_checkpoint(const std::string& path,
                                    std::string* error) {
  const std::optional<sim::Checkpoint> ckpt =
      sim::Checkpoint::read_file(path, error);
  if (!ckpt.has_value()) return false;
  if (!load_state(*ckpt)) {
    if (error != nullptr) {
      *error = "checkpoint does not match this scenario/architecture";
    }
    return false;
  }
  return true;
}

ReplicaRunner::RunStats ReplicaRunner::run() {
  RunStats stats;
  // pet-lint: allow(banned-api): wall-clock throughput stats — reported as
  // wall_seconds/replicas_per_sec only, never part of the merge digest
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int32_t e = 0; e < cfg_.episodes; ++e) {
    stats.episodes.push_back(run_episode());
  }
  // pet-lint: allow(banned-api): wall-clock throughput stats (see above)
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto replica_episodes =
      static_cast<double>(cfg_.episodes) * static_cast<double>(cfg_.replicas);
  if (stats.wall_seconds > 0.0) {
    stats.replicas_per_sec = replica_episodes / stats.wall_seconds;
  }
  stats.rollout_digest = digest_;
  return stats;
}

}  // namespace pet::exp
