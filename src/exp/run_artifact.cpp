#include "exp/run_artifact.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "exp/scheme.hpp"
#include "net/topology.hpp"
#include "sim/fs_atomic.hpp"
#include "workload/distributions.hpp"

// Injected by src/exp/CMakeLists.txt from `git rev-parse` at configure
// time; "unknown" outside a git checkout.
#ifndef PET_GIT_SHA
#define PET_GIT_SHA "unknown"
#endif

namespace pet::exp {

RunArtifact::RunArtifact(std::string name) : name_(std::move(name)) {}

void RunArtifact::set_mode(std::string mode) { mode_ = std::move(mode); }
void RunArtifact::set_seed(std::uint64_t seed) { seed_ = seed; }
void RunArtifact::set_threads(std::int32_t threads) { threads_ = threads; }

void RunArtifact::set_scenario(const ScenarioConfig& cfg) {
  has_scenario_ = true;
  scenario_ = JsonValue::object();
  scenario_.set("scheme", scheme_name(cfg.scheme));
  scenario_.set("workload", workload::workload_name(cfg.workload));
  scenario_.set("load", cfg.load);
  scenario_.set("seed", cfg.seed);
  scenario_.set("topology", topology_spec_json(cfg.topo));
  scenario_.set("pretrain_ms", cfg.pretrain.ms());
  scenario_.set("measure_ms", cfg.measure.ms());
  scenario_.set("tuning_interval_us", cfg.tuning_interval.us());
  scenario_.set("incast_enabled", JsonValue(cfg.incast_enabled));
  scenario_.set("flow_size_cap_bytes", cfg.flow_size_cap_bytes);
}

void RunArtifact::add_metric(std::string key, double value) {
  metrics_.set(std::move(key), value);
}

void RunArtifact::add_metric(std::string key, std::string value) {
  metrics_.set(std::move(key), JsonValue(std::move(value)));
}

void RunArtifact::add_metric(std::string key, JsonValue value) {
  metrics_.set(std::move(key), std::move(value));
}

void RunArtifact::set_manifest_extra(std::string key, JsonValue value) {
  manifest_extra_.set(std::move(key), std::move(value));
}

void RunArtifact::add_metrics(const std::string& label, const Metrics& m) {
  const std::string p = label.empty() ? "" : label + ".";
  add_metric(p + "overall.avg_fct_us", m.overall.avg_us);
  add_metric(p + "overall.p99_fct_us", m.overall.p99_us);
  add_metric(p + "overall.avg_slowdown", m.overall.avg_slowdown);
  add_metric(p + "overall.flows", static_cast<double>(m.overall.count));
  add_metric(p + "mice.avg_fct_us", m.mice.avg_us);
  add_metric(p + "mice.p99_fct_us", m.mice.p99_us);
  add_metric(p + "elephants.avg_fct_us", m.elephants.avg_us);
  add_metric(p + "latency.avg_us", m.latency_avg_us);
  add_metric(p + "latency.p99_us", m.latency_p99_us);
  add_metric(p + "queue.avg_kb", m.queue_avg_kb);
  add_metric(p + "queue.std_kb", m.queue_std_kb);
  add_metric(p + "flows_incomplete", static_cast<double>(m.flows_incomplete));
  add_metric(p + "switch_drops", static_cast<double>(m.switch_drops));
  add_metric(p + "pfc_pauses", static_cast<double>(m.pfc_pauses));
}

void RunArtifact::add_switch_summaries(
    const std::vector<net::SwitchDevice*>& switches) {
  switches_ = JsonValue::array();
  for (const net::SwitchDevice* sw : switches) {
    JsonValue row = JsonValue::object();
    row.set("id", sw->id());
    row.set("name", sw->name());
    std::int64_t tx_bytes = 0;
    std::int64_t marked_bytes = 0;
    std::int64_t dropped = 0;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      tx_bytes += sw->port(p).tx_bytes();
      marked_bytes += sw->port(p).tx_marked_bytes();
      dropped += sw->port(p).dropped_packets();
    }
    row.set("tx_bytes", tx_bytes);
    row.set("tx_marked_bytes", marked_bytes);
    row.set("port_dropped_packets", dropped);
    row.set("dropped_no_route", sw->dropped_no_route());
    row.set("dropped_buffer_full", sw->dropped_buffer_full());
    row.set("pfc_pauses_sent", sw->pfc_pauses_sent());
    row.set("ecn_installs", sw->ecn_installs());
    row.set("reboots", sw->reboots());
    const net::EcnConfigSummary ecn = sw->ecn_config_summary();
    JsonValue cfg = JsonValue::object();
    cfg.set("kmin_min_bytes", ecn.kmin_min_bytes);
    cfg.set("kmin_max_bytes", ecn.kmin_max_bytes);
    cfg.set("kmax_min_bytes", ecn.kmax_min_bytes);
    cfg.set("kmax_max_bytes", ecn.kmax_max_bytes);
    cfg.set("pmax_min", ecn.pmax_min);
    cfg.set("pmax_max", ecn.pmax_max);
    cfg.set("uniform", JsonValue(ecn.uniform));
    cfg.set("queues", ecn.queues);
    row.set("ecn_config", std::move(cfg));
    switches_.push_back(std::move(row));
  }
}

namespace {

JsonValue dc_spec_json(const net::DcSpec& dc) {
  JsonValue out = JsonValue::object();
  if (const auto* ls = std::get_if<net::LeafSpineConfig>(&dc)) {
    out.set("kind", "leaf-spine");
    out.set("spines", ls->num_spines);
    out.set("leaves", ls->num_leaves);
    out.set("hosts_per_leaf", ls->hosts_per_leaf);
    out.set("host_gbps", ls->host_link_rate.gbps());
    out.set("spine_gbps", ls->spine_link_rate.gbps());
  } else {
    const auto& ft = std::get<net::FatTreeSpec>(dc);
    out.set("kind", "fat-tree");
    out.set("k", ft.k);
    out.set("hosts_per_edge", ft.hosts_per_edge_effective());
    out.set("host_gbps", ft.host_link_rate.gbps());
    out.set("edge_agg_gbps", ft.edge_agg_rate.gbps());
    out.set("agg_core_gbps", ft.agg_core_rate.gbps());
    out.set("edge_oversubscription", ft.edge_oversubscription());
    out.set("agg_oversubscription", ft.agg_oversubscription());
  }
  return out;
}

}  // namespace

JsonValue topology_spec_json(const net::TopologySpec& spec) {
  JsonValue topo = JsonValue::object();
  topo.set("kind", spec.kind_name());
  topo.set("hosts", spec.num_hosts());
  topo.set("switches", spec.num_switches());
  switch (spec.kind()) {
    case net::TopologySpec::Kind::kLeafSpine: {
      const net::LeafSpineConfig& ls = spec.leaf_spine();
      topo.set("spines", ls.num_spines);
      topo.set("leaves", ls.num_leaves);
      topo.set("hosts_per_leaf", ls.hosts_per_leaf);
      topo.set("host_gbps", ls.host_link_rate.gbps());
      topo.set("spine_gbps", ls.spine_link_rate.gbps());
      break;
    }
    case net::TopologySpec::Kind::kFatTree: {
      const net::FatTreeSpec& ft = spec.fat_tree();
      topo.set("k", ft.k);
      topo.set("hosts_per_edge", ft.hosts_per_edge_effective());
      topo.set("host_gbps", ft.host_link_rate.gbps());
      topo.set("edge_agg_gbps", ft.edge_agg_rate.gbps());
      topo.set("agg_core_gbps", ft.agg_core_rate.gbps());
      topo.set("edge_oversubscription", ft.edge_oversubscription());
      topo.set("agg_oversubscription", ft.agg_oversubscription());
      break;
    }
    case net::TopologySpec::Kind::kInterDc: {
      const net::InterDcSpec& idc = spec.inter_dc();
      topo.set("dc_a", dc_spec_json(idc.dc_a));
      topo.set("dc_b", dc_spec_json(idc.dc_b));
      topo.set("border_links", idc.border_links);
      topo.set("wan_gbps", idc.wan_rate.gbps());
      topo.set("wan_delay_us", idc.wan_delay.us());
      break;
    }
  }
  return topo;
}

JsonValue tier_summaries_json(const net::Fabric& fabric, net::Network& net) {
  JsonValue tiers = JsonValue::array();
  for (const net::FabricTier& tier : fabric.tiers()) {
    JsonValue row = JsonValue::object();
    row.set("label", tier.label);
    row.set("switches", static_cast<std::int64_t>(tier.devices.size()));
    std::int64_t tx_bytes = 0;
    std::int64_t marked_bytes = 0;
    std::int64_t dropped = 0;
    std::int64_t no_route = 0;
    std::int64_t buffer_full = 0;
    std::int64_t pauses = 0;
    std::int64_t installs = 0;
    std::int64_t kmin_min = 0;
    std::int64_t kmin_max = 0;
    std::int64_t kmax_min = 0;
    std::int64_t kmax_max = 0;
    bool first = true;
    for (const net::DeviceId id : tier.devices) {
      const auto* sw = dynamic_cast<const net::SwitchDevice*>(&net.device(id));
      if (sw == nullptr) continue;
      for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
        tx_bytes += sw->port(p).tx_bytes();
        marked_bytes += sw->port(p).tx_marked_bytes();
        dropped += sw->port(p).dropped_packets();
      }
      no_route += sw->dropped_no_route();
      buffer_full += sw->dropped_buffer_full();
      pauses += sw->pfc_pauses_sent();
      installs += sw->ecn_installs();
      const net::EcnConfigSummary ecn = sw->ecn_config_summary();
      if (first) {
        kmin_min = ecn.kmin_min_bytes;
        kmin_max = ecn.kmin_max_bytes;
        kmax_min = ecn.kmax_min_bytes;
        kmax_max = ecn.kmax_max_bytes;
        first = false;
      } else {
        kmin_min = std::min(kmin_min, ecn.kmin_min_bytes);
        kmin_max = std::max(kmin_max, ecn.kmin_max_bytes);
        kmax_min = std::min(kmax_min, ecn.kmax_min_bytes);
        kmax_max = std::max(kmax_max, ecn.kmax_max_bytes);
      }
    }
    row.set("tx_bytes", tx_bytes);
    row.set("tx_marked_bytes", marked_bytes);
    row.set("port_dropped_packets", dropped);
    row.set("dropped_no_route", no_route);
    row.set("dropped_buffer_full", buffer_full);
    row.set("pfc_pauses_sent", pauses);
    row.set("ecn_installs", installs);
    JsonValue ecn = JsonValue::object();
    ecn.set("kmin_min_bytes", kmin_min);
    ecn.set("kmin_max_bytes", kmin_max);
    ecn.set("kmax_min_bytes", kmax_min);
    ecn.set("kmax_max_bytes", kmax_max);
    row.set("ecn_config", std::move(ecn));
    tiers.push_back(std::move(row));
  }
  return tiers;
}

void RunArtifact::add_tier_summaries(const net::Fabric& fabric,
                                     net::Network& net) {
  tiers_ = tier_summaries_json(fabric, net);
}

void RunArtifact::add_event_counts(const EventLog& log) {
  // Deterministic key order for byte-stable artifacts.
  std::map<std::string, std::int64_t> counts;
  for (const TelemetryEvent& e : log.events()) ++counts[e.kind];
  event_counts_ = JsonValue::object();
  for (const auto& [kind, n] : counts) event_counts_.set(kind, n);
}

void RunArtifact::set_profiler(const sim::Profiler& profiler) {
  profiler_ = JsonValue::object();
  JsonValue sections = JsonValue::array();
  for (const sim::Profiler::Section& s : profiler.sections()) {
    JsonValue row = JsonValue::object();
    row.set("name", s.name);
    row.set("calls", s.calls);
    row.set("wall_ms", s.wall_ms);
    sections.push_back(std::move(row));
  }
  profiler_.set("sections", std::move(sections));
  JsonValue spans = JsonValue::array();
  for (const sim::Profiler::Span& sp : profiler.spans()) {
    JsonValue row = JsonValue::object();
    row.set("name", sp.name);
    row.set("sim_t0_us", sp.t0_us);
    row.set("sim_t1_us", sp.t1_us);
    row.set("wall_ms", sp.wall_ms);
    spans.push_back(std::move(row));
  }
  profiler_.set("spans", std::move(spans));
}

JsonValue RunArtifact::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema", std::string(kSchemaVersion));
  JsonValue manifest = JsonValue::object();
  manifest.set("name", name_);
  manifest.set("git_sha", PET_GIT_SHA);
  manifest.set("seed", seed_);
  manifest.set("mode", mode_);
  manifest.set("threads", threads_);
  if (has_scenario_) manifest.set("scenario", scenario_);
  for (const auto& [key, value] : manifest_extra_.members()) {
    manifest.set(key, value);
  }
  root.set("manifest", std::move(manifest));
  root.set("metrics", metrics_);
  if (switches_.size() > 0) root.set("switches", switches_);
  if (tiers_.size() > 0) root.set("tiers", tiers_);
  if (!event_counts_.members().empty()) root.set("events", event_counts_);
  JsonValue prof = profiler_;
  if (prof.find("sections") == nullptr) {
    prof = JsonValue::object();
    prof.set("sections", JsonValue::array());
    prof.set("spans", JsonValue::array());
  }
  root.set("profiler", std::move(prof));
  return root;
}

bool RunArtifact::write(const std::string& path) const {
  const std::string target = path.empty() ? default_path() : path;
  // Atomic replace: resume detection and golden gates treat an existing
  // artifact as proof of a completed run, so a torn write must be
  // impossible.
  if (!sim::atomic_write_file(target, to_json_text() + '\n')) {
    std::fprintf(stderr, "run-artifact: failed to write %s\n", target.c_str());
    return false;
  }
  return true;
}

bool RunArtifact::validate_text(std::string_view text, std::string* error) {
  const auto set_error = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::string parse_error;
  const auto doc = JsonValue::parse(text, &parse_error);
  if (!doc) return set_error("invalid JSON: " + parse_error);
  if (!doc->is_object()) return set_error("top level is not an object");
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return set_error("missing \"schema\"");
  }
  if (schema->as_string() != kSchemaVersion) {
    return set_error("unexpected schema version: " + schema->as_string());
  }
  const JsonValue* manifest = doc->find("manifest");
  if (manifest == nullptr || !manifest->is_object()) {
    return set_error("missing \"manifest\" object");
  }
  for (const char* key : {"name", "git_sha", "mode"}) {
    const JsonValue* v = manifest->find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      return set_error(std::string("manifest missing string \"") + key + '"');
    }
  }
  const JsonValue* seed = manifest->find("seed");
  if (seed == nullptr || !seed->is_number()) {
    return set_error("manifest missing numeric \"seed\"");
  }
  const JsonValue* scenario = manifest->find("scenario");
  if (scenario != nullptr) {
    // A recorded scenario must carry the full topology spec.
    if (!scenario->is_object()) {
      return set_error("manifest \"scenario\" is not an object");
    }
    const JsonValue* topo = scenario->find("topology");
    if (topo == nullptr || !topo->is_object()) {
      return set_error("scenario missing \"topology\" object");
    }
    const JsonValue* kind = topo->find("kind");
    if (kind == nullptr || !kind->is_string() || kind->as_string().empty()) {
      return set_error("scenario topology missing string \"kind\"");
    }
    const JsonValue* hosts = topo->find("hosts");
    if (hosts == nullptr || !hosts->is_number()) {
      return set_error("scenario topology missing numeric \"hosts\"");
    }
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return set_error("missing \"metrics\" object");
  }
  const JsonValue* profiler = doc->find("profiler");
  if (profiler == nullptr || !profiler->is_object() ||
      profiler->find("sections") == nullptr ||
      !profiler->find("sections")->is_array()) {
    return set_error("missing \"profiler\" section with \"sections\" array");
  }
  return true;
}

}  // namespace pet::exp
