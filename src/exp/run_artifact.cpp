#include "exp/run_artifact.hpp"

#include <cstdio>
#include <map>

#include "exp/scheme.hpp"
#include "sim/fs_atomic.hpp"
#include "workload/distributions.hpp"

// Injected by src/exp/CMakeLists.txt from `git rev-parse` at configure
// time; "unknown" outside a git checkout.
#ifndef PET_GIT_SHA
#define PET_GIT_SHA "unknown"
#endif

namespace pet::exp {

RunArtifact::RunArtifact(std::string name) : name_(std::move(name)) {}

void RunArtifact::set_mode(std::string mode) { mode_ = std::move(mode); }
void RunArtifact::set_seed(std::uint64_t seed) { seed_ = seed; }
void RunArtifact::set_threads(std::int32_t threads) { threads_ = threads; }

void RunArtifact::set_scenario(const ScenarioConfig& cfg) {
  has_scenario_ = true;
  scenario_ = JsonValue::object();
  scenario_.set("scheme", scheme_name(cfg.scheme));
  scenario_.set("workload", workload::workload_name(cfg.workload));
  scenario_.set("load", cfg.load);
  scenario_.set("seed", cfg.seed);
  JsonValue topo = JsonValue::object();
  topo.set("spines", cfg.topo.num_spines);
  topo.set("leaves", cfg.topo.num_leaves);
  topo.set("hosts_per_leaf", cfg.topo.hosts_per_leaf);
  topo.set("host_gbps", cfg.topo.host_link_rate.gbps());
  scenario_.set("topology", std::move(topo));
  scenario_.set("pretrain_ms", cfg.pretrain.ms());
  scenario_.set("measure_ms", cfg.measure.ms());
  scenario_.set("tuning_interval_us", cfg.tuning_interval.us());
  scenario_.set("incast_enabled", JsonValue(cfg.incast_enabled));
  scenario_.set("flow_size_cap_bytes", cfg.flow_size_cap_bytes);
}

void RunArtifact::add_metric(std::string key, double value) {
  metrics_.set(std::move(key), value);
}

void RunArtifact::add_metric(std::string key, std::string value) {
  metrics_.set(std::move(key), JsonValue(std::move(value)));
}

void RunArtifact::add_metric(std::string key, JsonValue value) {
  metrics_.set(std::move(key), std::move(value));
}

void RunArtifact::set_manifest_extra(std::string key, JsonValue value) {
  manifest_extra_.set(std::move(key), std::move(value));
}

void RunArtifact::add_metrics(const std::string& label, const Metrics& m) {
  const std::string p = label.empty() ? "" : label + ".";
  add_metric(p + "overall.avg_fct_us", m.overall.avg_us);
  add_metric(p + "overall.p99_fct_us", m.overall.p99_us);
  add_metric(p + "overall.avg_slowdown", m.overall.avg_slowdown);
  add_metric(p + "overall.flows", static_cast<double>(m.overall.count));
  add_metric(p + "mice.avg_fct_us", m.mice.avg_us);
  add_metric(p + "mice.p99_fct_us", m.mice.p99_us);
  add_metric(p + "elephants.avg_fct_us", m.elephants.avg_us);
  add_metric(p + "latency.avg_us", m.latency_avg_us);
  add_metric(p + "latency.p99_us", m.latency_p99_us);
  add_metric(p + "queue.avg_kb", m.queue_avg_kb);
  add_metric(p + "queue.std_kb", m.queue_std_kb);
  add_metric(p + "flows_incomplete", static_cast<double>(m.flows_incomplete));
  add_metric(p + "switch_drops", static_cast<double>(m.switch_drops));
  add_metric(p + "pfc_pauses", static_cast<double>(m.pfc_pauses));
}

void RunArtifact::add_switch_summaries(
    const std::vector<net::SwitchDevice*>& switches) {
  switches_ = JsonValue::array();
  for (const net::SwitchDevice* sw : switches) {
    JsonValue row = JsonValue::object();
    row.set("id", sw->id());
    row.set("name", sw->name());
    std::int64_t tx_bytes = 0;
    std::int64_t marked_bytes = 0;
    std::int64_t dropped = 0;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      tx_bytes += sw->port(p).tx_bytes();
      marked_bytes += sw->port(p).tx_marked_bytes();
      dropped += sw->port(p).dropped_packets();
    }
    row.set("tx_bytes", tx_bytes);
    row.set("tx_marked_bytes", marked_bytes);
    row.set("port_dropped_packets", dropped);
    row.set("dropped_no_route", sw->dropped_no_route());
    row.set("dropped_buffer_full", sw->dropped_buffer_full());
    row.set("pfc_pauses_sent", sw->pfc_pauses_sent());
    row.set("ecn_installs", sw->ecn_installs());
    row.set("reboots", sw->reboots());
    const net::EcnConfigSummary ecn = sw->ecn_config_summary();
    JsonValue cfg = JsonValue::object();
    cfg.set("kmin_min_bytes", ecn.kmin_min_bytes);
    cfg.set("kmin_max_bytes", ecn.kmin_max_bytes);
    cfg.set("kmax_min_bytes", ecn.kmax_min_bytes);
    cfg.set("kmax_max_bytes", ecn.kmax_max_bytes);
    cfg.set("pmax_min", ecn.pmax_min);
    cfg.set("pmax_max", ecn.pmax_max);
    cfg.set("uniform", JsonValue(ecn.uniform));
    cfg.set("queues", ecn.queues);
    row.set("ecn_config", std::move(cfg));
    switches_.push_back(std::move(row));
  }
}

void RunArtifact::add_event_counts(const EventLog& log) {
  // Deterministic key order for byte-stable artifacts.
  std::map<std::string, std::int64_t> counts;
  for (const TelemetryEvent& e : log.events()) ++counts[e.kind];
  event_counts_ = JsonValue::object();
  for (const auto& [kind, n] : counts) event_counts_.set(kind, n);
}

void RunArtifact::set_profiler(const sim::Profiler& profiler) {
  profiler_ = JsonValue::object();
  JsonValue sections = JsonValue::array();
  for (const sim::Profiler::Section& s : profiler.sections()) {
    JsonValue row = JsonValue::object();
    row.set("name", s.name);
    row.set("calls", s.calls);
    row.set("wall_ms", s.wall_ms);
    sections.push_back(std::move(row));
  }
  profiler_.set("sections", std::move(sections));
  JsonValue spans = JsonValue::array();
  for (const sim::Profiler::Span& sp : profiler.spans()) {
    JsonValue row = JsonValue::object();
    row.set("name", sp.name);
    row.set("sim_t0_us", sp.t0_us);
    row.set("sim_t1_us", sp.t1_us);
    row.set("wall_ms", sp.wall_ms);
    spans.push_back(std::move(row));
  }
  profiler_.set("spans", std::move(spans));
}

JsonValue RunArtifact::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema", std::string(kSchemaVersion));
  JsonValue manifest = JsonValue::object();
  manifest.set("name", name_);
  manifest.set("git_sha", PET_GIT_SHA);
  manifest.set("seed", seed_);
  manifest.set("mode", mode_);
  manifest.set("threads", threads_);
  if (has_scenario_) manifest.set("scenario", scenario_);
  for (const auto& [key, value] : manifest_extra_.members()) {
    manifest.set(key, value);
  }
  root.set("manifest", std::move(manifest));
  root.set("metrics", metrics_);
  if (switches_.size() > 0) root.set("switches", switches_);
  if (!event_counts_.members().empty()) root.set("events", event_counts_);
  JsonValue prof = profiler_;
  if (prof.find("sections") == nullptr) {
    prof = JsonValue::object();
    prof.set("sections", JsonValue::array());
    prof.set("spans", JsonValue::array());
  }
  root.set("profiler", std::move(prof));
  return root;
}

bool RunArtifact::write(const std::string& path) const {
  const std::string target = path.empty() ? default_path() : path;
  // Atomic replace: resume detection and golden gates treat an existing
  // artifact as proof of a completed run, so a torn write must be
  // impossible.
  if (!sim::atomic_write_file(target, to_json_text() + '\n')) {
    std::fprintf(stderr, "run-artifact: failed to write %s\n", target.c_str());
    return false;
  }
  return true;
}

bool RunArtifact::validate_text(std::string_view text, std::string* error) {
  const auto set_error = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::string parse_error;
  const auto doc = JsonValue::parse(text, &parse_error);
  if (!doc) return set_error("invalid JSON: " + parse_error);
  if (!doc->is_object()) return set_error("top level is not an object");
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return set_error("missing \"schema\"");
  }
  if (schema->as_string() != kSchemaVersion) {
    return set_error("unexpected schema version: " + schema->as_string());
  }
  const JsonValue* manifest = doc->find("manifest");
  if (manifest == nullptr || !manifest->is_object()) {
    return set_error("missing \"manifest\" object");
  }
  for (const char* key : {"name", "git_sha", "mode"}) {
    const JsonValue* v = manifest->find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      return set_error(std::string("manifest missing string \"") + key + '"');
    }
  }
  const JsonValue* seed = manifest->find("seed");
  if (seed == nullptr || !seed->is_number()) {
    return set_error("manifest missing numeric \"seed\"");
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return set_error("missing \"metrics\" object");
  }
  const JsonValue* profiler = doc->find("profiler");
  if (profiler == nullptr || !profiler->is_object() ||
      profiler->find("sections") == nullptr ||
      !profiler->find("sections")->is_array()) {
    return set_error("missing \"profiler\" section with \"sections\" array");
  }
  return true;
}

}  // namespace pet::exp
