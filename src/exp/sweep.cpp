#include "exp/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "exp/metrics.hpp"
#include "exp/replica_runner.hpp"
#include "exp/run_artifact.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pet::exp {

namespace {

/// Whole-file read for per-point artifacts; empty optional on any error.
std::optional<std::string> read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return text;
}

std::string format_point_id(Scheme scheme, double load, std::uint64_t seed) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s_load%g_seed%llu", scheme_name(scheme),
                load, static_cast<unsigned long long>(seed));
  return buf;
}

std::string hex_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Per-attempt rendezvous between the supervising pool worker and the
/// attempt thread. Heap-shared so an abandoned (hung) attempt can finish
/// writing its outcome after the supervisor has moved on.
struct AttemptShared {
  std::mutex m;
  std::condition_variable cv;
  bool done PET_GUARDED_BY(m) = false;
  std::atomic<bool> cancel{false};
};

}  // namespace

std::vector<SweepPoint> SweepGrid::expand(std::int32_t train_episodes) const {
  // An empty topology axis is a single unnamed point on the base topology,
  // which keeps the historical "<scheme>_load<g>_seed<n>" ids.
  const std::vector<NamedTopologySpec> ax_topo =
      topologies.empty()
          ? std::vector<NamedTopologySpec>{NamedTopologySpec{"", base.topo}}
          : topologies;
  const std::vector<Scheme> ax_scheme =
      schemes.empty() ? std::vector<Scheme>{base.scheme} : schemes;
  const std::vector<double> ax_load =
      loads.empty() ? std::vector<double>{base.load} : loads;
  const std::vector<std::uint64_t> ax_seed =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  std::vector<SweepPoint> points;
  points.reserve(ax_topo.size() * ax_scheme.size() * ax_load.size() *
                 ax_seed.size());
  for (const NamedTopologySpec& topo : ax_topo) {
    for (const Scheme scheme : ax_scheme) {
      for (const double load : ax_load) {
        for (const std::uint64_t seed : ax_seed) {
          SweepPoint p;
          p.index = static_cast<std::int32_t>(points.size());
          p.id = format_point_id(scheme, load, seed);
          if (!topo.name.empty()) p.id = topo.name + "_" + p.id;
          p.cfg = base;
          p.cfg.topo = topo.spec;
          p.cfg.scheme = scheme;
          p.cfg.load = load;
          p.cfg.seed = seed;
          p.training = train_episodes > 0 && (scheme == Scheme::kPet ||
                                              scheme == Scheme::kPetAblation);
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

SweepRunner::SweepRunner(SweepGrid grid, SweepRunnerConfig cfg)
    : grid_(std::move(grid)), cfg_(std::move(cfg)) {}

std::string SweepRunner::point_artifact_path(const SweepPoint& p) const {
  return cfg_.out_dir + "/point_" + p.id + ".json";
}

std::string SweepRunner::point_checkpoint_path(const SweepPoint& p) const {
  return cfg_.out_dir + "/point_" + p.id + ".ckpt";
}

std::string SweepRunner::merged_artifact_path() const {
  return cfg_.out_dir + "/sweep_" + grid_.name + ".json";
}

void SweepRunner::note_durable_write() {
  const std::int32_t n =
      durable_writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.crash_after_writes > 0 && n >= cfg_.crash_after_writes) {
    std::fprintf(stderr,
                 "sweep: injected crash after %d durable writes\n", n);
    std::fflush(stderr);
    std::_Exit(137);
  }
}

bool SweepRunner::write_point_artifact(const SweepPoint& point,
                                       const JsonValue& metrics) {
  RunArtifact art("point_" + point.id);
  art.set_mode("sweep");
  art.set_seed(point.cfg.seed);
  art.set_threads(1);
  art.set_scenario(point.cfg);
  for (const auto& [key, value] : metrics.members()) {
    art.add_metric(key, value);
  }
  if (!art.write(point_artifact_path(point))) return false;
  note_durable_write();
  return true;
}

SweepRunner::AttemptOutcome SweepRunner::run_training_attempt(
    const SweepPoint& point, const std::atomic<bool>& cancel,
    bool allow_resume) {
  AttemptOutcome out;
  ReplicaRunnerConfig rr;
  rr.replicas = cfg_.replicas;
  // Concurrency lives at the point level; replicas within a point run
  // sequentially so a sweep never oversubscribes the machine.
  rr.threads = 1;
  rr.episodes = cfg_.train_episodes;
  ReplicaRunner runner(point.cfg, rr);

  const std::string ckpt = point_checkpoint_path(point);
  // Resumed sweeps and retried attempts continue from the latest
  // checkpoint; a fresh (resume=false) first attempt ignores stale
  // checkpoints on disk.
  if (allow_resume) {
    std::string error;
    if (runner.load_checkpoint(ckpt, &error)) {
      out.resumed = true;
      out.resumed_from_episode = runner.next_episode();
    } else if (std::filesystem::exists(ckpt)) {
      std::fprintf(stderr, "sweep: ignoring checkpoint %s (%s)\n",
                   ckpt.c_str(), error.c_str());
    }
  }

  while (runner.next_episode() < cfg_.train_episodes) {
    if (cancel.load(std::memory_order_relaxed) ||
        stop_.load(std::memory_order_relaxed)) {
      out.error = "cancelled";
      return out;
    }
    static_cast<void>(runner.run_episode());
    const std::int32_t episodes_done = runner.next_episode();
    if (cfg_.checkpoint_every > 0 &&
        (episodes_done % cfg_.checkpoint_every == 0 ||
         episodes_done == cfg_.train_episodes)) {
      if (runner.save_checkpoint(ckpt)) {
        note_durable_write();
      } else {
        std::fprintf(stderr, "sweep: failed to checkpoint %s\n",
                     ckpt.c_str());
      }
    }
  }

  if (cancel.load(std::memory_order_relaxed)) {
    out.error = "cancelled";
    return out;
  }
  std::size_t transitions = 0;
  for (const ReplicaRunner::EpisodeStats& st : runner.history()) {
    transitions += st.transitions;
  }
  JsonValue metrics = JsonValue::object();
  metrics.set("episodes",
              static_cast<double>(runner.history().size()));
  metrics.set("total_transitions", static_cast<double>(transitions));
  metrics.set("final_mean_reward", runner.history().empty()
                                       ? 0.0
                                       : runner.history().back().mean_reward);
  metrics.set("rollout_digest", hex_u64(runner.last_digest()));
  out.ok = write_point_artifact(point, metrics);
  if (!out.ok) out.error = "artifact write failed";
  return out;
}

SweepRunner::AttemptOutcome SweepRunner::run_eval_attempt(
    const SweepPoint& point, const std::atomic<bool>& cancel) {
  AttemptOutcome out;
  Experiment ex(point.cfg);
  bool completed = false;
  const Metrics m = ex.run_chunked(
      sim::milliseconds(1),
      [this, &cancel] {
        return !cancel.load(std::memory_order_relaxed) &&
               !stop_.load(std::memory_order_relaxed);
      },
      &completed);
  if (!completed) {
    out.error = "cancelled";
    return out;
  }
  // Mirror the add_metrics() layout through a scratch artifact so per-point
  // metric keys match standalone bench artifacts exactly. The per-tier
  // roll-up rides in the metrics block so the merged sweep artifact
  // carries it for every point.
  RunArtifact scratch("scratch");
  scratch.add_metrics("", m);
  scratch.add_metric("tiers", tier_summaries_json(ex.topology(), ex.network()));
  const JsonValue doc = scratch.to_json();
  const JsonValue* metrics = doc.find("metrics");
  out.ok = metrics != nullptr && write_point_artifact(point, *metrics);
  if (!out.ok) out.error = "artifact write failed";
  return out;
}

SweepRunner::AttemptOutcome SweepRunner::run_attempt(
    const SweepPoint& point, const std::atomic<bool>& cancel,
    bool allow_resume) {
  return point.training ? run_training_attempt(point, cancel, allow_resume)
                        : run_eval_attempt(point, cancel);
}

SweepRunner::PointStatus SweepRunner::run_point(const SweepPoint& point) {
  PointStatus status;
  status.id = point.id;

  if (cfg_.resume) {
    if (const auto text = read_text_file(point_artifact_path(point))) {
      std::string error;
      if (RunArtifact::validate_text(*text, &error)) {
        status.status = "ok";
        status.completed = true;
        return status;  // a valid artifact is the completion marker
      }
      std::fprintf(stderr, "sweep: re-running %s (invalid artifact: %s)\n",
                   point.id.c_str(), error.c_str());
    }
  }

  for (std::int32_t attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (stop_.load(std::memory_order_relaxed)) {
      status.status = "stopped";
      return status;
    }
    ++status.attempts;

    auto shared = std::make_shared<AttemptShared>();
    auto outcome = std::make_shared<AttemptOutcome>();
    std::thread worker([this, shared, outcome, &point, attempt] {
      AttemptOutcome out;
      try {
        if (cfg_.attempt_hook) cfg_.attempt_hook(point, attempt);
        if (shared->cancel.load(std::memory_order_relaxed)) {
          out.error = "cancelled";
        } else {
          out = run_attempt(point, shared->cancel,
                            cfg_.resume || attempt > 0);
        }
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      }
      std::lock_guard<std::mutex> lk(shared->m);
      *outcome = std::move(out);
      shared->done = true;
      shared->cv.notify_all();
    });

    bool finished = false;
    {
      std::unique_lock<std::mutex> lk(shared->m);
      if (cfg_.watchdog_seconds > 0.0) {
        finished = shared->cv.wait_for(
            lk, std::chrono::duration<double>(cfg_.watchdog_seconds),
            [&shared] { return shared->done; });
        if (!finished) {
          // Deadline exceeded: cancel cooperatively, then grant a grace
          // window before abandoning the attempt.
          shared->cancel.store(true, std::memory_order_relaxed);
          finished = shared->cv.wait_for(
              lk, std::chrono::duration<double>(cfg_.grace_seconds),
              [&shared] { return shared->done; });
        }
      } else {
        shared->cv.wait(lk, [&shared] { return shared->done; });
        finished = true;
      }
    }

    AttemptOutcome out;
    if (finished) {
      worker.join();
      out = *outcome;
    } else {
      // Abandoned: the thread still holds `shared`/`outcome` and will
      // observe the cancel flag at its next poll; run() joins it before
      // returning so it never outlives the runner.
      {
        std::lock_guard<std::mutex> lk(abandoned_mutex_);
        abandoned_.push_back(std::move(worker));
      }
      out.ok = false;
      out.error = "watchdog deadline exceeded";
      std::fprintf(stderr, "sweep: %s attempt %d exceeded %.1fs watchdog\n",
                   point.id.c_str(), attempt, cfg_.watchdog_seconds);
    }

    if (out.resumed && status.resumed_from_episode == 0) {
      status.resumed_from_episode = out.resumed_from_episode;
    }
    if (out.ok) {
      status.completed = true;
      if (status.attempts > 1) {
        status.status = "retried";
      } else if (out.resumed) {
        status.status = "resumed";
      } else {
        status.status = "ok";
      }
      return status;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      status.status = "stopped";
      return status;
    }
    if (attempt < cfg_.max_retries) {
      // Capped exponential backoff with deterministic seeded jitter: the
      // retry schedule replays identically for a given (grid seed, point,
      // attempt) so fault-tolerance tests stay reproducible.
      sim::Rng jitter(sim::Stream(grid_.base.seed)
                          .child("sweep-retry")
                          .child(static_cast<std::uint64_t>(point.index))
                          .child(static_cast<std::uint64_t>(attempt))
                          .seed());
      const double base = std::min(
          cfg_.backoff_cap_seconds,
          cfg_.backoff_base_seconds * std::pow(2.0, static_cast<double>(attempt)));
      const double delay = base * (0.5 + 0.5 * jitter.uniform());
      std::fprintf(stderr, "sweep: retrying %s in %.2fs (%s)\n",
                   point.id.c_str(), delay, out.error.c_str());
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }

  status.status = "quarantined";
  std::fprintf(stderr, "sweep: quarantined %s after %d attempts\n",
               point.id.c_str(), status.attempts);
  return status;
}

void SweepRunner::write_merged_artifact(Result& result) const {
  RunArtifact merged(grid_.name);
  merged.set_mode("sweep");
  merged.set_seed(grid_.base.seed);
  merged.set_threads(cfg_.threads);
  merged.set_scenario(grid_.base);

  JsonValue sweep = JsonValue::object();
  JsonValue points = JsonValue::array();
  for (const PointStatus& st : result.points) {
    JsonValue row = JsonValue::object();
    row.set("id", st.id);
    row.set("status", st.status);
    row.set("attempts", st.attempts);
    row.set("resumed_from_episode", st.resumed_from_episode);
    points.push_back(std::move(row));
  }
  sweep.set("points", std::move(points));
  merged.set_manifest_extra("sweep", std::move(sweep));

  merged.add_metric("points_total",
                    static_cast<double>(result.points.size()));
  merged.add_metric("points_completed", static_cast<double>(result.completed));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!result.points[i].completed) continue;
    const auto text = read_text_file(point_artifact_path(points_[i]));
    if (!text) {
      std::fprintf(stderr, "sweep: missing artifact for %s\n",
                   points_[i].id.c_str());
      continue;
    }
    std::string error;
    const auto doc = JsonValue::parse(*text, &error);
    const JsonValue* metrics = doc ? doc->find("metrics") : nullptr;
    if (metrics == nullptr) {
      std::fprintf(stderr, "sweep: unreadable artifact for %s (%s)\n",
                   points_[i].id.c_str(), error.c_str());
      continue;
    }
    merged.add_metric(points_[i].id, *metrics);
  }
  result.artifact_path = merged_artifact_path();
  static_cast<void>(merged.write(result.artifact_path));
}

SweepRunner::Result SweepRunner::run() {
  points_ = grid_.expand(cfg_.train_episodes);
  std::error_code ec;
  std::filesystem::create_directories(cfg_.out_dir, ec);

  std::int32_t threads = cfg_.threads;
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(std::thread::hardware_concurrency());
  }
  threads = std::max(
      1, std::min(threads, static_cast<std::int32_t>(points_.size())));

  std::vector<PointStatus> statuses(points_.size());
  std::atomic<std::size_t> ticket{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (std::int32_t t = 0; t < threads; ++t) {
    pool.emplace_back([this, &ticket, &statuses] {
      for (;;) {
        const std::size_t i =
            ticket.fetch_add(1, std::memory_order_relaxed);
        if (i >= points_.size()) return;
        statuses[i] = run_point(points_[i]);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  // Abandoned attempts hold references into this runner; wait for them to
  // observe cancellation and wind down before publishing results.
  {
    std::lock_guard<std::mutex> lk(abandoned_mutex_);
    for (std::thread& th : abandoned_) {
      if (th.joinable()) th.join();
    }
    abandoned_.clear();
  }

  Result result;
  result.points = std::move(statuses);
  for (const PointStatus& st : result.points) {
    if (st.completed) ++result.completed;
    if (st.status == "quarantined") ++result.quarantined;
  }
  write_merged_artifact(result);
  return result;
}

}  // namespace pet::exp
