#pragma once
// Offline pre-training (paper Section 4.4.1): train an initial model in a
// sandbox simulation driven by traffic matching the production
// distributions, then deploy its weights onto every switch for online
// incremental training. A small file cache lets bench binaries reuse
// pre-trained models across invocations.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/time.hpp"

namespace pet::exp {

struct PretrainOptions {
  /// Sandbox simulated duration (longer = better initial model).
  sim::Time duration = sim::milliseconds(600);
  /// Loads cycled through the sandbox so the model sees varied regimes.
  std::vector<double> loads{0.3, 0.5, 0.7};
  /// Interval between load switches.
  sim::Time cycle = sim::milliseconds(20);
  /// Offline training runs hotter than the deployed learning rates.
  double lr_boost = 3.0;
  /// Print training progress (reward trend, greedy action) per cycle.
  bool verbose = false;
};

/// Run the offline sandbox for `base`'s scheme/workload/topology and return
/// the trained weights (empty for static schemes). PET trains one shared
/// policy over all switches' pooled experience, mirroring the single
/// pre-trained initial model the paper installs on every switch.
[[nodiscard]] std::vector<double> offline_pretrain(ScenarioConfig base,
                                                   const PretrainOptions& opt);

/// Stable cache key for a (scenario, pretrain) combination.
[[nodiscard]] std::string pretrain_cache_key(const ScenarioConfig& base,
                                             const PretrainOptions& opt);

/// Binary weight files under a cache directory.
class WeightCache {
 public:
  explicit WeightCache(std::string dir) : dir_(std::move(dir)) {}

  /// Loads a cached weight vector. Returns nullopt (with a warning on
  /// stderr) for missing, truncated, corrupted or non-finite files, and —
  /// when expected_count is nonzero — for files whose weight count does
  /// not match the consuming model (stale cache from an older
  /// architecture). Callers treat nullopt as a cache miss and retrain.
  [[nodiscard]] std::optional<std::vector<double>> load(
      const std::string& key, std::uint64_t expected_count = 0) const;
  void store(const std::string& key, std::span<const double> weights) const;

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  std::string dir_;
};

/// Pre-train (or fetch from cache) the weights for a learning scheme.
/// Returns empty for static schemes.
[[nodiscard]] std::vector<double> pretrained_weights_cached(
    const ScenarioConfig& base, const PretrainOptions& opt,
    const std::string& cache_dir = "pretrain_cache",
    std::uint64_t expected_count = 0);

}  // namespace pet::exp
