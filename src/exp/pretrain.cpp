#include "exp/pretrain.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/reward.hpp"
#include "sim/fs_atomic.hpp"
#include "sim/rng.hpp"
#include "workload/distributions.hpp"

namespace pet::exp {

std::vector<double> offline_pretrain(ScenarioConfig base,
                                     const PretrainOptions& opt) {
  if (!is_learning_scheme(base.scheme)) return {};
  base.pet_shared_policy = true;
  base.pretrain_lr_boost = opt.lr_boost;
  base.pet_explore_start = 0.1;
  base.seed = sim::derive_seed(base.seed, "offline-pretrain");
  Experiment sandbox(base);

  // Cycle the sandbox through the configured load regimes.
  sim::Time t = sim::Time::zero();
  std::size_t idx = 0;
  while (t < opt.duration) {
    const double load = opt.loads[idx % opt.loads.size()];
    sandbox.add_event(t, [&sandbox, load] { sandbox.background().set_load(load); });
    ++idx;
    t += opt.cycle;
  }
  if (!opt.verbose) {
    sandbox.run_until(opt.duration);
    return sandbox.learned_weights();
  }
  for (sim::Time at = opt.cycle; at <= opt.duration; at += opt.cycle) {
    sandbox.run_until(at);
    if (auto* pet = sandbox.pet()) {
      auto& agent = pet->agent(0);
      const auto g = agent.policy().act_greedy(std::vector<double>(
          static_cast<std::size_t>(agent.policy().config().input_size), 0.5));
      // pet-lint: allow(banned-api): pretrain progress is CLI UX on stdout
      std::printf(
          "  [pretrain] t=%.0fms reward(mean)=%.3f updates=%lld greedy "
          "n_min=%d n_max=%d p=%d expl=%.3f\n",
          at.ms(), pet->mean_reward(), static_cast<long long>(agent.updates()),
          g[0], g[1], g[2], agent.policy().exploration_rate());
      // pet-lint: allow(banned-api): pretrain progress is CLI UX on stdout
      std::printf("             entropy=%.3f kl=%.4f vloss=%.4f\n",
                  agent.last_update().entropy, agent.last_update().approx_kl,
                  agent.last_update().value_loss);
    } else if (auto* acc = sandbox.acc()) {
      // pet-lint: allow(banned-api): pretrain progress is CLI UX on stdout
      std::printf("  [pretrain] t=%.0fms reward(mean)=%.3f eps=%.3f\n",
                  at.ms(), acc->mean_reward(),
                  acc->agent(0).learner().epsilon());
    }
    std::fflush(stdout);
  }
  return sandbox.learned_weights();
}

std::string pretrain_cache_key(const ScenarioConfig& base,
                               const PretrainOptions& opt) {
  const core::RewardConfig reward = base.reward_config();
  // Non-leaf-spine fabrics get a kind discriminator; leaf-spine keys keep
  // the historical format so existing on-disk caches stay valid.
  const std::string topo_tag =
      base.topo.is_leaf_spine() ? "" : std::string("_") + base.topo.kind_name();
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%s_%s%s_h%d_r%" PRId64 "_seed%llu_d%" PRId64 "ms_b%g_rw%g-%g-%g",
      scheme_name(base.scheme), workload::workload_name(base.workload),
      topo_tag.c_str(), base.topo.num_hosts(),
      base.topo.host_link_rate().bps() / 1'000'000'000,
      static_cast<unsigned long long>(base.seed),
      static_cast<std::int64_t>(opt.duration.ms()), opt.lr_boost,
      reward.beta1, reward.beta2, reward.qref_bytes / 1024.0);
  return buf;
}

std::string WeightCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".weights";
}

std::optional<std::vector<double>> WeightCache::load(
    const std::string& key, std::uint64_t expected_count) const {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != 0x5045545754ULL) {  // "PETWT"
    std::fprintf(stderr, "  [pretrain] WARN: %s is not a weight file\n",
                 path.c_str());
    return std::nullopt;
  }
  // Validate the declared count against the actual payload size before
  // allocating: a corrupted header must not trigger a giant allocation or a
  // silently short read.
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  const std::uint64_t header = 2 * sizeof(std::uint64_t);
  if (ec || file_size < header ||
      (file_size - header) / sizeof(double) != count ||
      (file_size - header) % sizeof(double) != 0) {
    std::fprintf(stderr,
                 "  [pretrain] WARN: %s truncated or corrupted "
                 "(declares %llu weights, payload %llu bytes)\n",
                 path.c_str(), static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(
                     file_size >= header ? file_size - header : 0));
    return std::nullopt;
  }
  if (expected_count != 0 && count != expected_count) {
    std::fprintf(stderr,
                 "  [pretrain] WARN: %s holds %llu weights but the model "
                 "expects %llu; ignoring cached model\n",
                 path.c_str(), static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(expected_count));
    return std::nullopt;
  }
  std::vector<double> weights(count);
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) {
    std::fprintf(stderr, "  [pretrain] WARN: short read from %s\n",
                 path.c_str());
    return std::nullopt;
  }
  for (const double w : weights) {
    if (!std::isfinite(w)) {
      std::fprintf(stderr,
                   "  [pretrain] WARN: %s contains non-finite weights; "
                   "ignoring cached model\n",
                   path.c_str());
      return std::nullopt;
    }
  }
  return weights;
}

void WeightCache::store(const std::string& key,
                        std::span<const double> weights) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Assemble in memory, then write atomically: a concurrent or crashed
  // writer must never leave a torn cache entry that a later run trusts.
  std::string blob;
  blob.reserve(16 + weights.size() * sizeof(double));
  const std::uint64_t magic = 0x5045545754ULL;
  const std::uint64_t count = weights.size();
  blob.append(reinterpret_cast<const char*>(&magic), sizeof magic);
  blob.append(reinterpret_cast<const char*>(&count), sizeof count);
  blob.append(reinterpret_cast<const char*>(weights.data()),
              count * sizeof(double));
  static_cast<void>(sim::atomic_write_file(path_for(key), blob));
}

std::vector<double> pretrained_weights_cached(const ScenarioConfig& base,
                                              const PretrainOptions& opt,
                                              const std::string& cache_dir,
                                              std::uint64_t expected_count) {
  if (!is_learning_scheme(base.scheme)) return {};
  const WeightCache cache(cache_dir);
  const std::string key = pretrain_cache_key(base, opt);
  if (auto cached = cache.load(key, expected_count)) {
    // pet-lint: allow(banned-api): pretrain progress is CLI UX on stdout
    std::printf("  [pretrain] cache hit: %s\n", key.c_str());
    return *cached;
  }
  // pet-lint: allow(banned-api): pretrain progress is CLI UX on stdout
  std::printf("  [pretrain] training %s (%.0f ms sandbox)...\n", key.c_str(),
              opt.duration.ms());
  std::fflush(stdout);
  std::vector<double> weights = offline_pretrain(base, opt);
  if (!weights.empty()) cache.store(key, weights);
  return weights;
}

}  // namespace pet::exp
