#pragma once
// ExperimentBuilder: the fluent front door for assembling scenarios.
//
//   auto ex = exp::ExperimentBuilder{}
//                 .topology(net::LeafSpineConfig::paper_scale())
//                 .workload(workload::WorkloadKind::kWebSearch)
//                 .scheme(exp::Scheme::kPet)
//                 .seed(7)
//                 .build();
//
// Every knob of ScenarioConfig has a chainable setter; build() validates
// the assembled configuration once (throwing std::invalid_argument with a
// field-naming message) so malformed scenarios fail loudly at the API
// boundary instead of deep inside the simulator. replicas(N) switches the
// product from a single Experiment to a ReplicaRunner that trains N
// independent replicas in parallel (see replica_runner.hpp).
//
// Constructing `Experiment` directly from a hand-filled ScenarioConfig
// remains supported as a deprecated shim for existing code.

#include <cstdint>
#include <memory>

#include "exp/experiment.hpp"
#include "exp/scheme.hpp"
#include "net/topology.hpp"
#include "net/topology_spec.hpp"
#include "rl/inference.hpp"
#include "sim/time.hpp"
#include "transport/dcqcn.hpp"
#include "workload/distributions.hpp"

namespace pet::exp {

class ReplicaRunner;
struct ReplicaRunnerConfig;

class ExperimentBuilder {
 public:
  ExperimentBuilder() = default;

  /// Seed the builder from an existing ScenarioConfig (migration aid).
  [[nodiscard]] static ExperimentBuilder from_config(const ScenarioConfig& cfg);

  // --- fabric ---------------------------------------------------------------
  /// Any fabric family: leaf-spine, k-ary fat-tree, or inter-DC
  /// (net/topology_spec.hpp).
  ExperimentBuilder& topology(const net::TopologySpec& topo);
  /// Deprecated shim: LeafSpineConfig wraps into a TopologySpec. Kept so
  /// pre-Fabric callers keep compiling (mirrors the ScenarioConfig shim).
  ExperimentBuilder& topology(const net::LeafSpineConfig& topo);
  ExperimentBuilder& dcqcn(const transport::DcqcnConfig& cfg);
  /// Re-derive DCQCN's increase machinery from the (already set) host link
  /// rate; applied at build() time so it sees the final topology.
  ExperimentBuilder& tuned_dcqcn(bool enabled = true);

  // --- workload -------------------------------------------------------------
  ExperimentBuilder& workload(workload::WorkloadKind kind);
  ExperimentBuilder& load(double target_load);
  /// 0 disables flow-size truncation.
  ExperimentBuilder& flow_size_cap(double bytes);
  ExperimentBuilder& incast(bool enabled);
  ExperimentBuilder& incast(std::int32_t fan_in, std::int64_t request_bytes,
                            sim::Time period);

  // --- scheme & schedule ----------------------------------------------------
  ExperimentBuilder& scheme(Scheme s);
  ExperimentBuilder& phases(sim::Time pretrain, sim::Time measure);
  ExperimentBuilder& pretrain(sim::Time t);
  ExperimentBuilder& measure(sim::Time t);
  ExperimentBuilder& tuning_interval(sim::Time t);

  // --- learning knobs -------------------------------------------------------
  ExperimentBuilder& seed(std::uint64_t s);
  ExperimentBuilder& pretrain_lr_boost(double factor);
  ExperimentBuilder& shared_policy(bool shared);
  ExperimentBuilder& expects_pretrained(bool expects);
  ExperimentBuilder& explore_start(double rate);
  /// Deployment-decision serving precision (rl::PolicyServer). Non-kDirect
  /// modes imply shared_policy(true).
  ExperimentBuilder& infer(rl::InferMode mode);

  // --- observability --------------------------------------------------------
  /// Attach the experiment's Profiler to its Scheduler (per-event-kind
  /// sections; the event order is unaffected).
  ExperimentBuilder& profiling(bool enabled = true);

  // --- parallel replicas ----------------------------------------------------
  /// Train N fully independent replicas per episode and merge their
  /// rollouts into one IPPO update (build_runner()).
  ExperimentBuilder& replicas(std::int32_t n);
  /// Worker threads for the replica pool (0 = hardware concurrency). The
  /// merged result is identical for any thread count.
  ExperimentBuilder& threads(std::int32_t n);

  /// The assembled (not yet validated) configuration exactly as build()
  /// will consume it — deferred adjustments like tuned_dcqcn() applied.
  /// Useful as a pretrain-cache key.
  [[nodiscard]] ScenarioConfig config() const { return finalized(); }
  [[nodiscard]] std::int32_t num_replicas() const { return replicas_; }

  /// Validate and construct. Throws std::invalid_argument on a bad config.
  [[nodiscard]] std::unique_ptr<Experiment> build() const;
  /// Validate and construct the parallel-replica trainer (replicas() >= 1;
  /// requires a PET scheme).
  [[nodiscard]] ReplicaRunner build_runner() const;

 private:
  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
  [[nodiscard]] ScenarioConfig finalized() const;

  ScenarioConfig cfg_{};
  std::int32_t replicas_ = 1;
  std::int32_t threads_ = 0;
  bool tuned_dcqcn_ = false;
};

}  // namespace pet::exp
