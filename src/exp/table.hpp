#pragma once
// Fixed-width console tables for the bench binaries (paper-style rows).

#include <cstdio>
#include <string>
#include <vector>

namespace pet::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell formatting helper.
[[nodiscard]] std::string fmt(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pet::exp
