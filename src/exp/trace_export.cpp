#include "exp/trace_export.hpp"

#include <cstdio>

#include "sim/fs_atomic.hpp"

namespace pet::exp {

namespace {

JsonValue trace_event(const char* name, const char* ph, double ts_us) {
  JsonValue ev = JsonValue::object();
  ev.set("name", name);
  ev.set("ph", ph);
  ev.set("ts", ts_us);
  ev.set("pid", 0);
  ev.set("tid", 0);
  return ev;
}

}  // namespace

JsonValue chrome_trace_json(const EventLog* events,
                            const sim::Profiler* profiler,
                            const TelemetryRecorder* telemetry) {
  JsonValue trace = JsonValue::array();

  if (profiler != nullptr) {
    for (const sim::Profiler::Span& sp : profiler->spans()) {
      JsonValue ev = trace_event(sp.name.c_str(), "X", sp.t0_us);
      ev.set("dur", sp.t1_us - sp.t0_us);
      ev.set("cat", "phase");
      trace.push_back(std::move(ev));
    }
  }

  if (events != nullptr) {
    for (const TelemetryEvent& e : events->events()) {
      JsonValue ev = trace_event(e.kind.c_str(), "i", e.t_ms * 1000.0);
      ev.set("s", "g");  // global instant: faults concern the whole fabric
      ev.set("cat", "event");
      JsonValue args = JsonValue::object();
      args.set("detail", e.detail);
      ev.set("args", std::move(args));
      trace.push_back(std::move(ev));
    }
  }

  if (telemetry != nullptr) {
    for (const TelemetrySample& s : telemetry->samples()) {
      const std::string name = "sw" + std::to_string(s.switch_id);
      JsonValue ev = trace_event(name.c_str(), "C", s.t_ms * 1000.0);
      ev.set("cat", "telemetry");
      JsonValue args = JsonValue::object();
      args.set("max_queue_kb", s.max_queue_kb);
      args.set("total_queue_kb", s.total_queue_kb);
      args.set("tx_mbps", s.tx_mbps);
      ev.set("args", std::move(args));
      trace.push_back(std::move(ev));
    }
  }

  JsonValue root = JsonValue::object();
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", std::move(trace));
  return root;
}

bool write_chrome_trace(const std::string& path, const EventLog* events,
                        const sim::Profiler* profiler,
                        const TelemetryRecorder* telemetry) {
  if (!sim::atomic_write_file(
          path, chrome_trace_json(events, profiler, telemetry).dump() + '\n')) {
    std::fprintf(stderr, "trace-export: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace pet::exp
