#include "exp/experiment_builder.hpp"

#include <stdexcept>
#include <string>

#include "exp/replica_runner.hpp"

namespace pet::exp {

ExperimentBuilder ExperimentBuilder::from_config(const ScenarioConfig& cfg) {
  ExperimentBuilder b;
  b.cfg_ = cfg;
  return b;
}

ExperimentBuilder& ExperimentBuilder::topology(const net::TopologySpec& topo) {
  cfg_.topo = topo;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::topology(
    const net::LeafSpineConfig& topo) {
  cfg_.topo = net::TopologySpec(topo);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::dcqcn(const transport::DcqcnConfig& cfg) {
  cfg_.dcqcn = cfg;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tuned_dcqcn(bool enabled) {
  tuned_dcqcn_ = enabled;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(workload::WorkloadKind kind) {
  cfg_.workload = kind;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::load(double target_load) {
  cfg_.load = target_load;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::flow_size_cap(double bytes) {
  cfg_.flow_size_cap_bytes = bytes;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::incast(bool enabled) {
  cfg_.incast_enabled = enabled;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::incast(std::int32_t fan_in,
                                             std::int64_t request_bytes,
                                             sim::Time period) {
  cfg_.incast_enabled = true;
  cfg_.incast_fan_in = fan_in;
  cfg_.incast_request_bytes = request_bytes;
  cfg_.incast_period = period;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scheme(Scheme s) {
  cfg_.scheme = s;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::phases(sim::Time pretrain,
                                             sim::Time measure) {
  cfg_.pretrain = pretrain;
  cfg_.measure = measure;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::pretrain(sim::Time t) {
  cfg_.pretrain = t;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::measure(sim::Time t) {
  cfg_.measure = t;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tuning_interval(sim::Time t) {
  cfg_.tuning_interval = t;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t s) {
  cfg_.seed = s;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::pretrain_lr_boost(double factor) {
  cfg_.pretrain_lr_boost = factor;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::shared_policy(bool shared) {
  cfg_.pet_shared_policy = shared;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::expects_pretrained(bool expects) {
  cfg_.expects_pretrained = expects;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::explore_start(double rate) {
  cfg_.pet_explore_start = rate;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::infer(rl::InferMode mode) {
  cfg_.pet_infer = mode;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::profiling(bool enabled) {
  cfg_.profiling = enabled;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::replicas(std::int32_t n) {
  replicas_ = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(std::int32_t n) {
  threads_ = n;
  return *this;
}

namespace {
[[noreturn]] void fail(const std::string& field, const std::string& why) {
  throw std::invalid_argument("ExperimentBuilder: " + field + " " + why);
}
}  // namespace

void ExperimentBuilder::validate() const {
  try {
    cfg_.topo.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("ExperimentBuilder: ") + e.what());
  }
  if (!(cfg_.load > 0.0) || cfg_.load > 1.0) {
    fail("load", "must be in (0, 1], got " + std::to_string(cfg_.load));
  }
  if (cfg_.flow_size_cap_bytes < 0.0) {
    fail("flow_size_cap", "must be >= 0 (0 disables truncation)");
  }
  if (cfg_.incast_enabled) {
    if (cfg_.incast_fan_in < 1) fail("incast fan_in", "must be >= 1");
    if (cfg_.incast_request_bytes < 1) {
      fail("incast request_bytes", "must be >= 1");
    }
    if (cfg_.incast_period <= sim::Time::zero()) {
      fail("incast period", "must be positive");
    }
  }
  if (cfg_.pretrain < sim::Time::zero()) fail("pretrain", "must be >= 0");
  if (cfg_.measure <= sim::Time::zero()) fail("measure", "must be positive");
  if (cfg_.tuning_interval <= sim::Time::zero()) {
    fail("tuning_interval", "must be positive");
  }
  if (cfg_.pretrain_lr_boost <= 0.0) {
    fail("pretrain_lr_boost", "must be positive");
  }
  if (cfg_.pet_explore_start < 0.0 || cfg_.pet_explore_start > 1.0) {
    fail("explore_start", "must be in [0, 1]");
  }
  if (replicas_ < 1) fail("replicas", "must be >= 1");
  if (threads_ < 0) fail("threads", "must be >= 0 (0 = hardware)");
  if (replicas_ > 1 && cfg_.scheme != Scheme::kPet &&
      cfg_.scheme != Scheme::kPetAblation) {
    fail("replicas", "> 1 requires a PET scheme (merged IPPO update)");
  }
}

ScenarioConfig ExperimentBuilder::finalized() const {
  ScenarioConfig cfg = cfg_;
  if (tuned_dcqcn_) cfg.tune_dcqcn_for_rate();
  return cfg;
}

std::unique_ptr<Experiment> ExperimentBuilder::build() const {
  validate();
  return std::make_unique<Experiment>(finalized());
}

ReplicaRunner ExperimentBuilder::build_runner() const {
  validate();
  ReplicaRunnerConfig rc;
  rc.replicas = replicas_;
  rc.threads = threads_;
  return ReplicaRunner(finalized(), rc);
}

}  // namespace pet::exp
