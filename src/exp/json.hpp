#pragma once
// Minimal JSON value tree with serialization and parsing — just enough for
// run artifacts, chrome traces, and the bench-smoke validator; deliberately
// not a general-purpose library (no third-party deps allowed here).
//
// Determinism matters: objects preserve insertion order and numbers are
// rendered via shortest-round-trip std::to_chars, so identical inputs
// always serialize to identical bytes (the chrome-trace replay test relies
// on this). Non-finite doubles serialize as null (JSON has no NaN/Inf).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pet::exp {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  JsonValue(int i) : kind_(Kind::kNumber), num_(i) {}
  JsonValue(std::uint64_t u) : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // --- array ----------------------------------------------------------------
  JsonValue& push_back(JsonValue v);
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const JsonValue& at(std::size_t i) const { return items_[i]; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }

  // --- object ---------------------------------------------------------------
  /// Insert or overwrite a member (insertion order preserved).
  JsonValue& set(std::string key, JsonValue v);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; std::nullopt on any syntax error
  /// (optionally reported through `error`).
  [[nodiscard]] static std::optional<JsonValue> parse(
      std::string_view text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Append-to-string number rendering used by dump() (shortest round-trip).
void json_append_number(std::string& out, double v);

/// Append a quoted, escaped JSON string.
void json_append_string(std::string& out, std::string_view s);

}  // namespace pet::exp
