#include "exp/experiment.hpp"

#include <algorithm>
#include <limits>

#include "core/guardrails.hpp"
#include "core/pet_agent.hpp"
#include "sim/rng.hpp"

namespace pet::exp {

void ScenarioConfig::tune_dcqcn_for_rate() {
  // Scale DCQCN's increase machinery with the host line rate so recovery
  // behaves comparably at 10G (scaled benches) and 25G (paper scale).
  const double line = static_cast<double>(topo.host_link_rate().bps());
  dcqcn.rate_ai_bps = line / 200.0;
  dcqcn.rate_hai_bps = line / 20.0;
  dcqcn.byte_counter = static_cast<std::int64_t>(line / 8.0 * 300e-6);
  dcqcn.increase_timer = sim::microseconds(300);
}

namespace {
std::vector<net::HostId> all_hosts(const net::Fabric& topo) {
  std::vector<net::HostId> hosts(static_cast<std::size_t>(topo.num_hosts()));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    hosts[i] = static_cast<net::HostId>(i);
  }
  return hosts;
}
}  // namespace

Experiment::Experiment(const ScenarioConfig& cfg)
    : cfg_(cfg),
      net_(sched_, cfg.seed),
      topo_(net::build_fabric(net_, cfg.topo)),
      recorder_(cfg.seed),
      queue_probe_(sched_, net_.switches()),
      event_log_(sched_) {
  transport_ = std::make_unique<transport::RdmaTransport>(net_, cfg_.dcqcn,
                                                          &recorder_);

  workload::PoissonTrafficConfig bg_cfg;
  bg_cfg.load = cfg_.load;
  bg_cfg.host_rate = cfg_.topo.host_link_rate();
  bg_cfg.hosts = all_hosts(topo_);
  bg_cfg.sizes = sized_cdf(cfg_.workload);
  bg_cfg.seed = sim::derive_seed(cfg_.seed, "bg");
  bg_ = std::make_unique<workload::PoissonTrafficGenerator>(sched_, *transport_,
                                                            bg_cfg);

  if (cfg_.incast_enabled) {
    workload::IncastConfig inc;
    inc.fan_in = cfg_.incast_fan_in;
    inc.request_bytes = cfg_.incast_request_bytes;
    inc.period = cfg_.incast_period;
    inc.hosts = all_hosts(topo_);
    inc.seed = sim::derive_seed(cfg_.seed, "incast");
    incast_ = std::make_unique<workload::IncastGenerator>(sched_, *transport_,
                                                          inc);
  }

  // Phase spans always carry simulated time (trace export relies on it);
  // per-event sections only when profiling is requested.
  profiler_.set_time_source([this] { return sched_.now().us(); });
  if (cfg_.profiling) sched_.set_profiler(&profiler_);

  install_scheme();
  set_lr_boost(cfg_.pretrain_lr_boost);
  bg_->start();
  if (incast_ != nullptr) incast_->start();
  queue_probe_.start();
}

void Experiment::set_lr_boost(double factor) {
  if (pet_ != nullptr) {
    for (std::size_t i = 0; i < pet_->num_agents(); ++i) {
      auto& policy = pet_->agent(i).policy();
      const auto& ppo = policy.config();
      policy.set_learning_rates(ppo.actor_lr * factor, ppo.critic_lr * factor);
    }
  }
  if (acc_ != nullptr) {
    for (std::size_t i = 0; i < acc_->num_agents(); ++i) {
      auto& learner = acc_->agent(i).learner();
      learner.set_lr(1e-3 * factor);
    }
  }
}

workload::EmpiricalCdf Experiment::sized_cdf(
    workload::WorkloadKind kind) const {
  workload::EmpiricalCdf cdf = workload::workload_cdf(kind);
  if (cfg_.flow_size_cap_bytes > 0.0) {
    cdf = cdf.truncated(cfg_.flow_size_cap_bytes);
  }
  return cdf;
}

void Experiment::install_scheme() {
  // Every scheme starts from the SECN1 static config; the learning schemes
  // then re-tune it each interval.
  net_.install_ecn(cfg_.scheme == Scheme::kSecn2 ? secn2_config()
                                                 : secn1_config());
  switch (cfg_.scheme) {
    case Scheme::kSecn1:
    case Scheme::kSecn2:
      break;
    case Scheme::kPet:
    case Scheme::kPetAblation: {
      core::PetControllerConfig pc;
      pc.agent = core::PetAgentConfig::paper_defaults();
      pc.agent.tuning_interval = cfg_.tuning_interval;
      pc.agent.reward = cfg_.reward_config();
      // Short scenario budgets: update from smaller rollouts so several
      // PPO iterations fit into the pre-training window.
      pc.agent.rollout_length = 32;
      pc.agent.ppo.minibatch_size = 32;
      pc.agent.explore_start =
          cfg_.expects_pretrained ? 0.02 : cfg_.pet_explore_start;
      pc.agent.state.qlen_norm_bytes =
          static_cast<double>(cfg_.topo.switch_config().pfc_xoff_bytes);
      // The policy server snapshots one shared policy, so any serving mode
      // implies parameter sharing (the paper's deployed single pre-trained
      // model).
      pc.infer = cfg_.pet_infer;
      pc.shared_policy = cfg_.pet_shared_policy ||
                         cfg_.pet_infer != rl::InferMode::kDirect;
      if (cfg_.scheme == Scheme::kPetAblation) {
        pc.agent.state.include_incast = false;
        pc.agent.state.include_flow_ratio = false;
      }
      pet_ = std::make_unique<core::PetController>(
          sched_, net_.switches(), pc, sim::derive_seed(cfg_.seed, "pet"));
      pet_->set_health_listener([this](const core::HealthTransition& tr) {
        event_log_.record("agent-health",
                          "switch " + std::to_string(tr.switch_id) + " " +
                              core::health_name(tr.from) + "->" +
                              core::health_name(tr.to) + ": " + tr.reason);
      });
      pet_->start();
      break;
    }
    case Scheme::kAmt: {
      baselines::AmtConfig amt_cfg;
      amt_cfg.period = cfg_.tuning_interval;
      amt_ = std::make_unique<baselines::AmtTuner>(sched_, net_.switches(),
                                                   amt_cfg);
      amt_->start();
      break;
    }
    case Scheme::kQaecn: {
      baselines::QaecnConfig q_cfg;
      q_cfg.period = cfg_.tuning_interval;
      qaecn_ = std::make_unique<baselines::QaecnTuner>(sched_, net_.switches(),
                                                       q_cfg);
      qaecn_->start();
      break;
    }
    case Scheme::kAcc: {
      acc::AccControllerConfig ac;
      ac.agent.tuning_interval = cfg_.tuning_interval;
      ac.agent.reward = cfg_.reward_config();
      ac.agent.state.qlen_norm_bytes =
          static_cast<double>(cfg_.topo.switch_config().pfc_xoff_bytes);
      // Anneal epsilon over the pre-training phase so measurement runs
      // mostly greedy (ACC's deployed behaviour). With a pretrained model
      // installed, start gently instead of from-scratch exploration.
      ac.agent.ddqn.epsilon_start = cfg_.expects_pretrained ? 0.1 : 1.0;
      ac.agent.ddqn.epsilon_end = 0.05;
      ac.agent.ddqn.epsilon_decay_steps = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, cfg_.pretrain / cfg_.tuning_interval));
      acc_ = std::make_unique<acc::AccController>(
          sched_, net_.switches(), ac, sim::derive_seed(cfg_.seed, "acc"));
      acc_->start();
      break;
    }
  }
}

bool Experiment::install_learned_weights(std::span<const double> weights) {
  bool ok = true;
  if (pet_ != nullptr) ok = pet_->install_weights(weights) && ok;
  if (acc_ != nullptr) ok = acc_->install_weights(weights) && ok;
  return ok;
}

std::vector<double> Experiment::learned_weights() const {
  if (pet_ != nullptr && pet_->num_agents() > 0) {
    return pet_->agent(0).policy().weights();
  }
  if (acc_ != nullptr && acc_->num_agents() > 0) {
    return acc_->agent(0).learner().weights();
  }
  return {};
}

net::FaultPlan& Experiment::fault_plan() {
  if (fault_plan_ == nullptr) {
    fault_plan_ = std::make_unique<net::FaultPlan>(
        net_, sim::derive_seed(cfg_.seed, "fault-plan"));
    fault_plan_->set_event_sink(
        [this](sim::Time, net::FaultKind kind, const std::string& detail) {
          event_log_.record(net::fault_kind_name(kind), detail);
        });
  }
  return *fault_plan_;
}

void Experiment::mark_measurement_start() {
  measure_start_ = sched_.now();
  queue_probe_.reset();
  recorder_.reset_latency();
  // Offline pre-training ends here; online incremental training continues
  // at the paper's learning rates with a low, stable exploration rate
  // (Section 4.4's exploration/exploitation handoff).
  set_lr_boost(1.0);
  if (pet_ != nullptr) {
    for (std::size_t i = 0; i < pet_->num_agents(); ++i) {
      pet_->agent(i).freeze_exploration(0.02);
      pet_->agent(i).set_deployment_mode(true);
    }
  }
}

void Experiment::switch_workload(workload::WorkloadKind kind) {
  cfg_.workload = kind;
  bg_->set_sizes(sized_cdf(kind));
}

Metrics Experiment::run() {
  {
    PET_PROFILE_SCOPE(&profiler_, "pretrain");
    sched_.run_until(cfg_.pretrain);
  }
  mark_measurement_start();
  {
    PET_PROFILE_SCOPE(&profiler_, "measure");
    sched_.run_until(cfg_.pretrain + cfg_.measure);
  }
  return collect(measure_start_, sched_.now());
}

Metrics Experiment::run_chunked(sim::Time chunk,
                                const std::function<bool()>& keep_going,
                                bool* completed) {
  // Mirrors run() exactly: run_until(t) in steps is the same event sequence
  // as one run_until(t), so the only behavioural difference is the
  // cancellation polls between chunks.
  if (chunk <= sim::Time::zero()) chunk = cfg_.pretrain + cfg_.measure;
  bool cancelled = false;
  const auto advance_to = [&](sim::Time target) {
    while (sched_.now() < target) {
      if (!keep_going()) {
        cancelled = true;
        return;
      }
      const sim::Time next = sched_.now() + chunk;
      sched_.run_until(next < target ? next : target);
    }
  };
  {
    PET_PROFILE_SCOPE(&profiler_, "pretrain");
    advance_to(cfg_.pretrain);
  }
  if (!cancelled) {
    mark_measurement_start();
    PET_PROFILE_SCOPE(&profiler_, "measure");
    advance_to(cfg_.pretrain + cfg_.measure);
  }
  if (completed != nullptr) *completed = !cancelled;
  return collect(measure_start_, sched_.now());
}

Metrics Experiment::collect(sim::Time from, sim::Time to) const {
  Metrics m;
  const auto& records = recorder_.records();
  const sim::Rate host_rate = cfg_.topo.host_link_rate();
  const sim::Time rtt = topo_.diameter_rtt(cfg_.dcqcn.mtu_bytes);
  m.overall = fct_bucket_overall(records, from, to, host_rate, rtt);
  m.mice = fct_bucket_mice(records, from, to, host_rate, rtt);
  m.elephants = fct_bucket_elephants(records, from, to, host_rate, rtt);
  m.latency_avg_us = recorder_.latency_stats().mean();
  m.latency_p99_us = recorder_.latency_percentile(99.0);
  m.queue_avg_kb = queue_probe_.stats().mean() / 1024.0;
  m.queue_std_kb = queue_probe_.stats().stddev() / 1024.0;
  m.flows_measured = static_cast<std::int64_t>(m.overall.count);
  m.flows_incomplete =
      transport_->flows_started() - transport_->flows_completed();
  m.switch_drops = net_.total_switch_drops();
  std::int64_t pauses = 0;
  for (const auto* sw : net_.switches()) pauses += sw->pfc_pauses_sent();
  m.pfc_pauses = pauses;
  return m;
}

}  // namespace pet::exp
