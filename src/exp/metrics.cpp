#include "exp/metrics.hpp"

#include <limits>

#include "sim/stats.hpp"

namespace pet::exp {

double ideal_fct_us(std::int64_t size_bytes, sim::Rate host_rate,
                    sim::Time base_rtt) {
  const double ser_us = static_cast<double>(size_bytes) * 8.0 /
                        static_cast<double>(host_rate.bps()) * 1e6;
  return ser_us + base_rtt.us() / 2.0;
}

FctBucketStats fct_bucket(const std::vector<transport::FctRecord>& records,
                          std::int64_t lo_bytes, std::int64_t hi_bytes,
                          sim::Time from, sim::Time to, sim::Rate host_rate,
                          sim::Time base_rtt) {
  std::vector<double> fcts;
  std::vector<double> slowdowns;
  for (const auto& r : records) {
    const auto& spec = r.spec;
    if (spec.start_time < from || spec.start_time >= to) continue;
    if (spec.size_bytes < lo_bytes || spec.size_bytes >= hi_bytes) continue;
    const double fct_us = r.fct().us();
    fcts.push_back(fct_us);
    slowdowns.push_back(fct_us /
                        ideal_fct_us(spec.size_bytes, host_rate, base_rtt));
  }
  FctBucketStats out;
  out.count = fcts.size();
  out.avg_us = sim::mean_of(fcts);
  out.p99_us = sim::percentile(fcts, 99.0);
  out.avg_slowdown = sim::mean_of(slowdowns);
  out.p99_slowdown = sim::percentile(slowdowns, 99.0);
  return out;
}

FctBucketStats fct_bucket_overall(
    const std::vector<transport::FctRecord>& records, sim::Time from,
    sim::Time to, sim::Rate host_rate, sim::Time base_rtt) {
  return fct_bucket(records, 0, std::numeric_limits<std::int64_t>::max(),
                    from, to, host_rate, base_rtt);
}

FctBucketStats fct_bucket_mice(const std::vector<transport::FctRecord>& records,
                               sim::Time from, sim::Time to,
                               sim::Rate host_rate, sim::Time base_rtt) {
  // The paper's (0, 100KB] bucket: a flow of exactly kMiceMaxBytes is a
  // mouse, so the exclusive upper edge sits one byte above it.
  return fct_bucket(records, 0, kMiceMaxBytes + 1, from, to, host_rate,
                    base_rtt);
}

FctBucketStats fct_bucket_elephants(
    const std::vector<transport::FctRecord>& records, sim::Time from,
    sim::Time to, sim::Rate host_rate, sim::Time base_rtt) {
  // [kElephantMinBytes, inf): a flow of exactly the threshold is an
  // elephant (the old call sites passed kElephantMinBytes - 1 to an
  // exclusive lower edge to get the same set — fragile, now explicit).
  return fct_bucket(records, kElephantMinBytes,
                    std::numeric_limits<std::int64_t>::max(), from, to,
                    host_rate, base_rtt);
}

}  // namespace pet::exp
