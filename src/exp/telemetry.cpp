#include "exp/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "sim/fs_atomic.hpp"
#include "sim/log.hpp"

namespace pet::exp {

namespace {
/// Shared CSV-writing path: on failure, surface the file name and errno at
/// WARN so a silently unwritable output directory is diagnosable.
bool write_text_file(sim::Scheduler& sched, const std::string& path,
                     const std::string& text) {
  errno = 0;
  // Atomic tmp+rename: a crash mid-export never leaves a truncated CSV.
  if (!sim::atomic_write_file(path, text)) {
    PET_LOG_WARN(sched, "failed to write %s: %s", path.c_str(),
                 errno != 0 ? std::strerror(errno) : "stream error");
    return false;
  }
  return true;
}
}  // namespace

void EventLog::record(std::string kind, std::string detail) {
  events_.push_back(TelemetryEvent{sched_.now().ms(), std::move(kind),
                                   std::move(detail)});
}

std::size_t EventLog::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string EventLog::to_csv() const {
  std::string out = "t_ms,kind,detail\n";
  char stamp[64];
  for (const auto& e : events_) {
    std::snprintf(stamp, sizeof stamp, "%.3f,", e.t_ms);
    out += stamp;
    out += e.kind;
    out += ',';
    // Keep the CSV single-line-per-event; details are free text.
    std::string detail = e.detail;
    std::replace(detail.begin(), detail.end(), ',', ';');
    std::replace(detail.begin(), detail.end(), '\n', ' ');
    out += detail;
    out += '\n';
  }
  return out;
}

bool EventLog::write_csv(const std::string& path) const {
  return write_text_file(sched_, path, to_csv());
}

TelemetryRecorder::TelemetryRecorder(sim::Scheduler& sched,
                                     std::vector<net::SwitchDevice*> switches,
                                     sim::Time period)
    : sched_(sched),
      switches_(std::move(switches)),
      period_(period),
      last_tx_bytes_(switches_.size(), 0),
      last_marked_bytes_(switches_.size(), 0),
      last_sample_(sched.now()) {}

void TelemetryRecorder::start() {
  if (running_) return;
  running_ = true;
  last_sample_ = sched_.now();
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    std::int64_t tx = 0;
    std::int64_t marked = 0;
    for (std::int32_t p = 0; p < switches_[i]->num_ports(); ++p) {
      tx += switches_[i]->port(p).tx_bytes();
      marked += switches_[i]->port(p).tx_marked_bytes();
    }
    last_tx_bytes_[i] = tx;
    last_marked_bytes_[i] = marked;
  }
  ev_ = sched_.schedule_in(period_, [this] { sample_all(); },
                           "telemetry.sample");
}

void TelemetryRecorder::stop() {
  running_ = false;
  if (ev_.valid()) {
    sched_.cancel(ev_);
    ev_ = sim::EventId{};
  }
}

void TelemetryRecorder::sample_all() {
  if (!running_) return;
  const sim::Time now = sched_.now();
  const double window_sec = std::max(1e-12, (now - last_sample_).sec());
  last_sample_ = now;

  for (std::size_t i = 0; i < switches_.size(); ++i) {
    net::SwitchDevice* sw = switches_[i];
    TelemetrySample s;
    s.t_ms = now.ms();
    s.switch_id = sw->id();
    std::int64_t max_q = 0;
    std::int64_t tx = 0;
    std::int64_t marked = 0;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      max_q = std::max(max_q, sw->port(p).total_queue_bytes());
      tx += sw->port(p).tx_bytes();
      marked += sw->port(p).tx_marked_bytes();
    }
    s.max_queue_kb = static_cast<double>(max_q) / 1024.0;
    s.total_queue_kb = static_cast<double>(sw->buffer_used_bytes()) / 1024.0;
    const double tx_delta = static_cast<double>(tx - last_tx_bytes_[i]);
    const double marked_delta =
        static_cast<double>(marked - last_marked_bytes_[i]);
    last_tx_bytes_[i] = tx;
    last_marked_bytes_[i] = marked;
    s.tx_mbps = tx_delta * 8.0 / window_sec / 1e6;
    s.marked_share = tx_delta > 0.0 ? marked_delta / tx_delta : 0.0;
    s.ecn = sw->ecn_config_summary();
    s.pfc_pauses = sw->pfc_pauses_sent();
    samples_.push_back(s);
  }
  ev_ = sched_.schedule_in(period_, [this] { sample_all(); },
                           "telemetry.sample");
}

std::string TelemetryRecorder::to_csv() const {
  std::string out =
      "t_ms,switch,max_queue_kb,total_queue_kb,tx_mbps,marked_share,"
      "kmin_min_bytes,kmin_max_bytes,kmax_min_bytes,kmax_max_bytes,"
      "pmax_min,pmax_max,ecn_uniform,pfc_pauses\n";
  char line[320];
  for (const auto& s : samples_) {
    std::snprintf(
        line, sizeof line,
        "%.3f,%d,%.3f,%.3f,%.2f,%.4f,%lld,%lld,%lld,%lld,%.3f,%.3f,%d,%lld\n",
        s.t_ms, s.switch_id, s.max_queue_kb, s.total_queue_kb, s.tx_mbps,
        s.marked_share, static_cast<long long>(s.ecn.kmin_min_bytes),
        static_cast<long long>(s.ecn.kmin_max_bytes),
        static_cast<long long>(s.ecn.kmax_min_bytes),
        static_cast<long long>(s.ecn.kmax_max_bytes), s.ecn.pmax_min,
        s.ecn.pmax_max, s.ecn.uniform ? 1 : 0,
        static_cast<long long>(s.pfc_pauses));
    out += line;
  }
  return out;
}

bool TelemetryRecorder::write_csv(const std::string& path) const {
  return write_text_file(sched_, path, to_csv());
}

}  // namespace pet::exp
