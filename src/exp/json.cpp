#include "exp/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pet::exp {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers render without an exponent or trailing ".0" so counters and
  // seeds stay greppable; everything else is shortest-round-trip.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf,
                                   static_cast<std::int64_t>(v));
    out.append(buf, res.ptr);
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: json_append_number(out, num_); break;
    case Kind::kString: json_append_string(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        json_append_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parsing -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;
  // No legitimate producer emits number tokens anywhere near this long; an
  // unbounded scan would let a hostile document stall the parser.
  static constexpr std::size_t kMaxNumberLength = 128;

  void fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue();
    return parse_number();
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a JSON value");
      return std::nullopt;
    }
    if (pos_ - start > kMaxNumberLength) {
      fail("number token too long");
      return std::nullopt;
    }
    double out = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(out);
  }

  /// Reads the 4 hex digits after "\u"; nullopt on truncation/garbage.
  std::optional<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned code = 0;
    const auto res = std::from_chars(text_.data() + pos_,
                                     text_.data() + pos_ + 4, code, 16);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
      fail("malformed \\u escape");
      return std::nullopt;
    }
    pos_ += 4;
    return code;
  }

  void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  /// Validates and copies one raw (non-escape) UTF-8 sequence whose lead
  /// byte has already been consumed. Rejects truncated sequences, bad
  /// continuation bytes, overlong encodings, surrogates and > U+10FFFF, so
  /// every accepted string is valid UTF-8 and survives dump/parse intact.
  bool copy_utf8_sequence(std::string& out, unsigned char lead) {
    int extra = 0;
    std::uint32_t code = 0;
    std::uint32_t min_code = 0;
    if (lead < 0x80) {
      out += static_cast<char>(lead);
      return true;
    } else if ((lead & 0xE0) == 0xC0) {
      extra = 1;
      code = lead & 0x1Fu;
      min_code = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      extra = 2;
      code = lead & 0x0Fu;
      min_code = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      extra = 3;
      code = lead & 0x07u;
      min_code = 0x10000;
    } else {
      fail("invalid UTF-8 byte in string");
      return false;
    }
    if (pos_ + static_cast<std::size_t>(extra) > text_.size()) {
      fail("truncated UTF-8 sequence in string");
      return false;
    }
    for (int i = 0; i < extra; ++i) {
      const auto cont = static_cast<unsigned char>(text_[pos_ + i]);
      if ((cont & 0xC0) != 0x80) {
        fail("invalid UTF-8 continuation byte in string");
        return false;
      }
      code = (code << 6) | (cont & 0x3Fu);
    }
    if (code < min_code) {
      fail("overlong UTF-8 encoding in string");
      return false;
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("UTF-8 encoded surrogate in string");
      return false;
    }
    if (code > 0x10FFFF) {
      fail("UTF-8 code point above U+10FFFF in string");
      return false;
    }
    out += static_cast<char>(lead);
    out.append(text_.substr(pos_, static_cast<std::size_t>(extra)));
    pos_ += static_cast<std::size_t>(extra);
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            const std::optional<unsigned> code = parse_hex4();
            if (!code) return std::nullopt;
            std::uint32_t cp = *code;
            if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("unpaired low surrogate in \\u escape");
              return std::nullopt;
            }
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (!consume('\\') || !consume('u')) {
                fail("unpaired high surrogate in \\u escape");
                return std::nullopt;
              }
              const std::optional<unsigned> low = parse_hex4();
              if (!low) return std::nullopt;
              if (*low < 0xDC00 || *low > 0xDFFF) {
                fail("invalid surrogate pair in \\u escape");
                return std::nullopt;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (*low - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      } else if (!copy_utf8_sequence(out,
                                     static_cast<unsigned char>(c))) {
        return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_array(int depth) {
    consume('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object(int depth) {
    consume('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text, error).parse_document();
}

}  // namespace pet::exp
