#pragma once
// Experiment: assembles fabric + transport + workload + scheme into one
// runnable scenario and computes paper-style metrics. Standard lifecycle is
// pretrain (hybrid-training warmup for the learning schemes) followed by a
// measurement window; specialty benches (convergence, robustness) drive the
// timeline manually through run_until()/add_event().

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "acc/acc_agent.hpp"
#include "acc/dynamic_tuners.hpp"
#include "core/controller.hpp"
#include "core/reward.hpp"
#include "exp/metrics.hpp"
#include "exp/queue_probe.hpp"
#include "exp/scheme.hpp"
#include "exp/telemetry.hpp"
#include "net/fabric.hpp"
#include "net/fault_plan.hpp"
#include "net/network.hpp"
#include "net/topology_spec.hpp"
#include "rl/inference.hpp"
#include "sim/profiler.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "transport/dcqcn.hpp"
#include "transport/fct_recorder.hpp"
#include "workload/cdf.hpp"
#include "workload/distributions.hpp"
#include "workload/traffic_gen.hpp"

namespace pet::exp {

struct ScenarioConfig {
  /// Any TopologySpec kind (leaf-spine, fat-tree, inter-DC); defaults to
  /// the scaled-down leaf-spine the benches always used.
  net::TopologySpec topo{};
  workload::WorkloadKind workload = workload::WorkloadKind::kWebSearch;
  double load = 0.6;
  /// Truncate the flow-size CDF so tail flows stay finishable on the scaled
  /// fabric (0 disables truncation; paper-scale runs disable it).
  double flow_size_cap_bytes = 20e6;

  bool incast_enabled = true;
  std::int32_t incast_fan_in = 8;
  std::int64_t incast_request_bytes = 32 * 1024;
  sim::Time incast_period = sim::milliseconds(1);

  transport::DcqcnConfig dcqcn{};
  Scheme scheme = Scheme::kPet;

  /// Hybrid-training phase before measurement (learning schemes train
  /// throughout; statistics collected only after this point).
  sim::Time pretrain = sim::milliseconds(30);
  sim::Time measure = sim::milliseconds(50);

  /// Reward weights follow the workload (paper Section 5.2).
  [[nodiscard]] core::RewardConfig reward_config() const {
    return workload == workload::WorkloadKind::kWebSearch
               ? core::RewardConfig::web_search()
               : core::RewardConfig::data_mining();
  }

  sim::Time tuning_interval = sim::microseconds(100);
  std::uint64_t seed = 1;

  /// Learning-rate multiplier during the offline pre-training phase; the
  /// paper's rates (4e-4 / 1e-3) apply once measurement (online
  /// incremental training) begins.
  double pretrain_lr_boost = 5.0;

  /// Offline pre-training mode: PET agents share one policy (pooled
  /// experience), as when producing the initial model for deployment.
  bool pet_shared_policy = false;

  /// Set when an offline-pretrained model will be installed: learning
  /// schemes then start online training gently (low epsilon, paper
  /// learning rates) instead of from-scratch schedules.
  bool expects_pretrained = false;

  /// PET initial exploration rate (offline sandboxes explore harder).
  double pet_explore_start = 0.1;

  /// Deployment-decision serving mode (rl::PolicyServer). Non-kDirect modes
  /// imply pet_shared_policy — the server snapshots one shared policy.
  /// kFp64 is bitwise identical to kDirect; kFp32/kInt8 trade bounded
  /// divergence for throughput.
  rl::InferMode pet_infer = rl::InferMode::kDirect;

  /// Attach the experiment's Profiler to its Scheduler so event kinds are
  /// counted and wall-timed (benches turn this on; the event sequence is
  /// unaffected either way).
  bool profiling = false;

  /// Scale the DCQCN increase steps for the configured host rate.
  void tune_dcqcn_for_rate();
};

class Experiment {
 public:
  explicit Experiment(const ScenarioConfig& cfg);

  /// Standard lifecycle: pretrain, mark measurement, run, collect.
  [[nodiscard]] Metrics run();

  /// run() with a cooperative cancellation point every `chunk` of simulated
  /// time: `keep_going` is polled between chunks (e.g. against a signal
  /// flag) and a false return stops the run early. The event sequence is
  /// identical to run() — chunked run_until calls execute the same events
  /// in the same order — so an uninterrupted run_chunked() produces
  /// byte-identical artifacts to run(). `completed` (optional) reports
  /// whether the full timeline was simulated; metrics cover the measurement
  /// window that actually ran.
  [[nodiscard]] Metrics run_chunked(sim::Time chunk,
                                    const std::function<bool()>& keep_going,
                                    bool* completed = nullptr);

  // --- manual timeline control (convergence/robustness benches) -----------
  void run_until(sim::Time t) { sched_.run_until(t); }
  void add_event(sim::Time t, std::function<void()> fn) {
    sched_.schedule_at(t, std::move(fn));
  }
  void mark_measurement_start();
  [[nodiscard]] Metrics collect(sim::Time from, sim::Time to) const;

  // --- component access ------------------------------------------------------
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] const net::Fabric& topology() const { return topo_; }
  [[nodiscard]] transport::RdmaTransport& transport() { return *transport_; }
  [[nodiscard]] transport::FctRecorder& recorder() { return recorder_; }
  [[nodiscard]] workload::PoissonTrafficGenerator& background() { return *bg_; }
  [[nodiscard]] workload::IncastGenerator* incast() { return incast_.get(); }
  [[nodiscard]] core::PetController* pet() { return pet_.get(); }
  [[nodiscard]] acc::AccController* acc() { return acc_.get(); }
  [[nodiscard]] baselines::AmtTuner* amt() { return amt_.get(); }
  [[nodiscard]] baselines::QaecnTuner* qaecn() { return qaecn_.get(); }
  [[nodiscard]] QueueProbe& queue_probe() { return queue_probe_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

  /// Run profiler: per-event-kind sections when cfg.profiling is set, plus
  /// the pretrain/measure phase spans recorded by run(). Always present so
  /// artifact/trace export never needs a null check.
  [[nodiscard]] sim::Profiler& profiler() { return profiler_; }
  [[nodiscard]] const sim::Profiler& profiler() const { return profiler_; }

  /// Scheduled fault injection for this scenario (lazily created; fired
  /// faults are mirrored into event_log()).
  [[nodiscard]] net::FaultPlan& fault_plan();

  /// Discrete event record: fault injections and (for PET) agent
  /// health-state transitions.
  [[nodiscard]] EventLog& event_log() { return event_log_; }
  [[nodiscard]] const EventLog& event_log() const { return event_log_; }

  /// Switch the background workload (Fig. 6 pattern switching).
  void switch_workload(workload::WorkloadKind kind);

  /// Install an offline-pretrained model into every agent of the active
  /// learning scheme (no-op for static schemes). Returns false when the
  /// weights do not fit the scheme's model (agents keep their random
  /// initialization, which is safe — just untrained).
  [[nodiscard]] bool install_learned_weights(std::span<const double> weights);

  /// Current model of the active learning scheme's first agent (empty for
  /// static schemes) — what offline pre-training exports.
  [[nodiscard]] std::vector<double> learned_weights() const;

 private:
  [[nodiscard]] workload::EmpiricalCdf sized_cdf(
      workload::WorkloadKind kind) const;
  void install_scheme();
  void set_lr_boost(double factor);

  ScenarioConfig cfg_;
  sim::Profiler profiler_;
  sim::Scheduler sched_;
  net::Network net_;
  net::Fabric topo_;
  transport::FctRecorder recorder_;
  std::unique_ptr<transport::RdmaTransport> transport_;
  std::unique_ptr<workload::PoissonTrafficGenerator> bg_;
  std::unique_ptr<workload::IncastGenerator> incast_;
  std::unique_ptr<core::PetController> pet_;
  std::unique_ptr<acc::AccController> acc_;
  std::unique_ptr<baselines::AmtTuner> amt_;
  std::unique_ptr<baselines::QaecnTuner> qaecn_;
  QueueProbe queue_probe_;
  EventLog event_log_;
  std::unique_ptr<net::FaultPlan> fault_plan_;
  sim::Time measure_start_;
};

}  // namespace pet::exp
