#pragma once
// The four schemes the paper compares (Section 5.4) plus the Fig. 9
// ablation variant.

#include "net/red_ecn.hpp"

namespace pet::exp {

enum class Scheme {
  kSecn1,        // static DCQCN config: Kmin 5KB / Kmax 200KB
  kSecn2,        // static HPCC config: Kmin 100KB / Kmax 400KB
  kAcc,          // DDQN + global replay, basic state set
  kPet,          // IPPO + six-factor state (this paper)
  kPetAblation,  // PET without D_incast / R_flow (Fig. 9)
  // Rule-based dynamic tuners from the related work (Section 2.2);
  // extensions beyond the paper's evaluated baselines.
  kAmt,    // link-utilization-driven threshold (AMT-style)
  kQaecn,  // queue-length integral control (QAECN-style)
};

[[nodiscard]] const char* scheme_name(Scheme scheme);

[[nodiscard]] inline bool is_learning_scheme(Scheme s) {
  return s == Scheme::kAcc || s == Scheme::kPet || s == Scheme::kPetAblation;
}

/// Static ECN configurations (paper Section 5.4). Pmax is not specified by
/// the paper; 20% is used for both so the contrast stays threshold-driven.
[[nodiscard]] net::RedEcnConfig secn1_config();
[[nodiscard]] net::RedEcnConfig secn2_config();

}  // namespace pet::exp
