#pragma once
// Experiment metrics: FCT statistics in the paper's size buckets
// (mice (0, 100KB], elephants [10MB, inf)), per-packet latency, queue
// statistics and loss/pause counters.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "transport/flow.hpp"

namespace pet::exp {

struct FctBucketStats {
  std::size_t count = 0;
  double avg_us = 0.0;
  double p99_us = 0.0;
  double avg_slowdown = 0.0;  // FCT / ideal FCT ("normalized FCT")
  double p99_slowdown = 0.0;
};

struct Metrics {
  FctBucketStats overall;
  FctBucketStats mice;       // (0, 100 KB]
  FctBucketStats elephants;  // [10 MB, inf)

  double latency_avg_us = 0.0;
  double latency_p99_us = 0.0;

  double queue_avg_kb = 0.0;
  double queue_std_kb = 0.0;

  std::int64_t flows_measured = 0;
  std::int64_t flows_incomplete = 0;
  std::int64_t switch_drops = 0;
  std::int64_t pfc_pauses = 0;
};

inline constexpr std::int64_t kMiceMaxBytes = 100 * 1000;
/// The paper's figures bucket elephants at [10MB, inf) on the 288-host
/// fabric; scaled-down runs truncate the size CDF below 10MB, so the
/// elephant bucket follows the paper's own mice/elephant classification
/// rule (> 1MB cumulative, Section 4.2.1) instead.
inline constexpr std::int64_t kElephantMinBytes = 1'000'000;

/// Ideal (unloaded) FCT used for slowdown normalization: serialization at
/// the host line rate plus the base one-way fabric delay.
[[nodiscard]] double ideal_fct_us(std::int64_t size_bytes,
                                  sim::Rate host_rate, sim::Time base_rtt);

/// Bucket statistics over completion records filtered to flows started in
/// [from, to) with size in the half-open byte range [lo_bytes, hi_bytes) —
/// the lower edge is INCLUDED, the upper excluded. Callers pass the bucket
/// edges themselves instead of off-by-one-adjusted values.
[[nodiscard]] FctBucketStats fct_bucket(
    const std::vector<transport::FctRecord>& records, std::int64_t lo_bytes,
    std::int64_t hi_bytes, sim::Time from, sim::Time to, sim::Rate host_rate,
    sim::Time base_rtt);

// Named paper buckets, so the edge arithmetic lives in exactly one place:
//   mice      = sizes in [0, kMiceMaxBytes]   (paper: (0, 100KB])
//   elephants = sizes in [kElephantMinBytes, inf)
//   overall   = every flow
[[nodiscard]] FctBucketStats fct_bucket_overall(
    const std::vector<transport::FctRecord>& records, sim::Time from,
    sim::Time to, sim::Rate host_rate, sim::Time base_rtt);
[[nodiscard]] FctBucketStats fct_bucket_mice(
    const std::vector<transport::FctRecord>& records, sim::Time from,
    sim::Time to, sim::Rate host_rate, sim::Time base_rtt);
[[nodiscard]] FctBucketStats fct_bucket_elephants(
    const std::vector<transport::FctRecord>& records, sim::Time from,
    sim::Time to, sim::Rate host_rate, sim::Time base_rtt);

}  // namespace pet::exp
