#include "exp/scheme.hpp"

namespace pet::exp {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSecn1: return "SECN1";
    case Scheme::kSecn2: return "SECN2";
    case Scheme::kAcc: return "ACC";
    case Scheme::kPet: return "PET";
    case Scheme::kPetAblation: return "PET-noIR";
    case Scheme::kAmt: return "AMT";
    case Scheme::kQaecn: return "QAECN";
  }
  return "?";
}

net::RedEcnConfig secn1_config() {
  return net::RedEcnConfig{
      .kmin_bytes = 5 * 1024, .kmax_bytes = 200 * 1024, .pmax = 0.2};
}

net::RedEcnConfig secn2_config() {
  return net::RedEcnConfig{
      .kmin_bytes = 100 * 1024, .kmax_bytes = 400 * 1024, .pmax = 0.2};
}

}  // namespace pet::exp
