#pragma once
// Periodic sampler of switch egress queue lengths — drives Table I
// (queue length average / variance).

#include <cstdint>
#include <vector>

#include "net/switch.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace pet::exp {

class QueueProbe {
 public:
  QueueProbe(sim::Scheduler& sched, std::vector<net::SwitchDevice*> switches,
             sim::Time period = sim::microseconds(20))
      : sched_(sched), switches_(std::move(switches)), period_(period) {}

  void start() {
    if (running_) return;
    running_ = true;
    schedule();
  }
  void stop() {
    running_ = false;
    if (ev_.valid()) {
      sched_.cancel(ev_);
      ev_ = sim::EventId{};
    }
  }
  void reset() { stats_.reset(); }

  /// Stats over per-port data-queue bytes sampled every `period`.
  [[nodiscard]] const sim::RunningStats& stats() const { return stats_; }

 private:
  void schedule() {
    ev_ = sched_.schedule_in(
        period_,
        [this] {
          if (!running_) return;
          for (const auto* sw : switches_) {
            for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
              stats_.add(static_cast<double>(sw->port(p).total_queue_bytes()));
            }
          }
          schedule();
        },
        "telemetry.probe");
  }

  sim::Scheduler& sched_;
  std::vector<net::SwitchDevice*> switches_;
  sim::Time period_;
  sim::RunningStats stats_;
  sim::EventId ev_;
  bool running_ = false;
};

}  // namespace pet::exp
