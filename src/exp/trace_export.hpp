#pragma once
// Chrome-trace ("trace_event") export: renders an EventLog, the profiler's
// phase spans and (optionally) telemetry time series into the JSON format
// chrome://tracing and Perfetto load directly.
//
// Timestamps are SIMULATED microseconds, never wall clock, so two runs of
// the same seed export byte-identical traces — the replay-determinism test
// pins that down. (Wall-clock profiler timings live in the RunArtifact.)

#include <string>

#include "exp/json.hpp"
#include "exp/telemetry.hpp"
#include "sim/profiler.hpp"

namespace pet::exp {

/// Assemble the trace document. Any input may be null and is then skipped:
///   events    -> instant events  (ph "i"), one per logged fault/health event
///   profiler  -> complete events (ph "X") from the sim-time phase spans
///   telemetry -> counter events  (ph "C") per switch: queue depth + rate
[[nodiscard]] JsonValue chrome_trace_json(
    const EventLog* events, const sim::Profiler* profiler,
    const TelemetryRecorder* telemetry = nullptr);

/// Serialize chrome_trace_json() to `path`; false (with a stderr note) on
/// I/O failure.
bool write_chrome_trace(const std::string& path, const EventLog* events,
                        const sim::Profiler* profiler,
                        const TelemetryRecorder* telemetry = nullptr);

}  // namespace pet::exp
