#pragma once
// exp::RunArtifact — the machine-readable output of one bench/experiment
// run. Every bench/* binary emits a schema-versioned BENCH_<name>.json
// carrying a manifest (git sha, seed, mode, scenario, threads), the final
// metrics, per-switch telemetry summaries, guardrail/fault event counts
// and the profiler's section table — so the perf trajectory across PRs can
// be read by tooling instead of scraped from human tables.
//
// No third-party dependencies: serialization rides the small JsonValue
// tree in exp/json.hpp.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/json.hpp"
#include "exp/metrics.hpp"
#include "exp/telemetry.hpp"
#include "net/fabric.hpp"
#include "net/network.hpp"
#include "net/switch.hpp"
#include "net/topology_spec.hpp"
#include "sim/profiler.hpp"

namespace pet::exp {

class RunArtifact {
 public:
  /// Bump on any backwards-incompatible change to the JSON layout.
  static constexpr std::string_view kSchemaVersion = "pet.run-artifact/1";

  /// `name` is the bench/run identity (e.g. "fig4_fct_websearch"); it
  /// names the default output file BENCH_<name>.json.
  explicit RunArtifact(std::string name);

  // --- manifest --------------------------------------------------------------
  /// Bench execution mode ("quick" / "scaled" / "paper-scale" / "test").
  void set_mode(std::string mode);
  void set_seed(std::uint64_t seed);
  /// Worker threads used (parallel replica runs; 1 for sequential benches).
  void set_threads(std::int32_t threads);
  /// Capture the scenario a run was built from (scheme, workload, load,
  /// topology, phases). Multi-scenario benches record their primary one.
  void set_scenario(const ScenarioConfig& cfg);
  /// Extra manifest member (insertion order preserved). The manifest is
  /// stripped by golden/resume canonicalization, so this is the right home
  /// for execution-history facts — interrupted flags, per-point sweep
  /// status — that must not perturb byte-identity of the payload.
  void set_manifest_extra(std::string key, JsonValue value);

  // --- payload ---------------------------------------------------------------
  /// Flat final metric (insertion order preserved in the JSON).
  void add_metric(std::string key, double value);
  /// String-valued metric — used for values JSON doubles cannot hold
  /// exactly (e.g. a 64-bit rollout digest rendered as hex).
  void add_metric(std::string key, std::string value);
  /// Structured metric subtree (e.g. a sweep's per-point metrics block).
  void add_metric(std::string key, JsonValue value);
  /// Expand a Metrics block under `label.` prefixed keys (overall/mice/
  /// elephant FCT, latency, queue, loss counters).
  void add_metrics(const std::string& label, const Metrics& m);
  /// Per-switch telemetry summary: egress/drop/pause/install counters and
  /// the honest min/max ECN config roll-up.
  void add_switch_summaries(const std::vector<net::SwitchDevice*>& switches);
  /// Per-tier roll-up of the same counters over the fabric's labeled
  /// switch tiers (payload "tiers" section).
  void add_tier_summaries(const net::Fabric& fabric, net::Network& net);
  /// Guardrail/fault event counts grouped by kind.
  void add_event_counts(const EventLog& log);
  /// Attach the profiler's section table and phase spans.
  void set_profiler(const sim::Profiler& profiler);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string default_path() const {
    return "BENCH_" + name_ + ".json";
  }

  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::string to_json_text() const { return to_json().dump(2); }

  /// Write to `path` (empty = default_path()). Failures are reported on
  /// stderr and via the return value; a bench still exits 0 — artifacts
  /// are telemetry, not the experiment.
  bool write(const std::string& path = "") const;

  /// Shared contract with the bench-smoke validator: parses `text` and
  /// checks the schema version plus the required manifest/metrics/profiler
  /// keys. On failure returns false and explains through `error`.
  static bool validate_text(std::string_view text, std::string* error);

 private:
  std::string name_;
  std::string mode_ = "scaled";
  std::uint64_t seed_ = 0;
  std::int32_t threads_ = 1;
  bool has_scenario_ = false;
  JsonValue scenario_ = JsonValue::object();
  JsonValue manifest_extra_ = JsonValue::object();
  JsonValue metrics_ = JsonValue::object();
  JsonValue switches_ = JsonValue::array();
  JsonValue tiers_ = JsonValue::array();
  JsonValue event_counts_ = JsonValue::object();
  JsonValue profiler_ = JsonValue::object();
};

/// The full topology spec as JSON — the manifest "topology" block (always
/// carries "kind" and the derived "hosts"/"switches" counts plus every
/// kind-specific field).
[[nodiscard]] JsonValue topology_spec_json(const net::TopologySpec& spec);

/// Per-tier switch counter roll-up for a built fabric; shared by
/// add_tier_summaries() and the sweep's per-point metrics.
[[nodiscard]] JsonValue tier_summaries_json(const net::Fabric& fabric,
                                            net::Network& net);

}  // namespace pet::exp
