#pragma once
// Time-series telemetry: periodic per-switch samples (queue depth,
// throughput, marking rate, ECN thresholds) collected into memory and
// exportable as CSV — the raw material for plotting the paper's
// time-series figures or debugging a scenario. EventLog captures the
// discrete side: fault injections and agent health transitions.

#include <cstdint>
#include <string>
#include <vector>

#include "net/switch.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace pet::exp {

/// A discrete, timestamped occurrence worth keeping next to the time
/// series: a fault firing, an agent health transition, a phase boundary.
struct TelemetryEvent {
  double t_ms = 0.0;
  std::string kind;
  std::string detail;
};

class EventLog {
 public:
  explicit EventLog(sim::Scheduler& sched) : sched_(sched) {}

  void record(std::string kind, std::string detail);

  [[nodiscard]] const std::vector<TelemetryEvent>& events() const {
    return events_;
  }
  /// Events whose kind matches exactly.
  [[nodiscard]] std::size_t count(const std::string& kind) const;

  [[nodiscard]] std::string to_csv() const;
  /// Write the CSV to a file; failures are logged at WARN with errno and
  /// reported via the return value.
  bool write_csv(const std::string& path) const;

 private:
  sim::Scheduler& sched_;
  std::vector<TelemetryEvent> events_;
};

struct TelemetrySample {
  double t_ms = 0.0;
  net::DeviceId switch_id = -1;
  double max_queue_kb = 0.0;       // deepest egress queue
  double total_queue_kb = 0.0;     // buffer in use
  double tx_mbps = 0.0;            // aggregate egress rate over the interval
  double marked_share = 0.0;       // CE-marked share of egress bytes
  /// Installed ECN state rolled up across every (port, queue): per-switch
  /// min/max of each threshold plus a uniformity flag, so per-port and
  /// multiqueue installs are reported honestly instead of as the
  /// port-0/queue-0 config.
  net::EcnConfigSummary ecn;
  std::int64_t pfc_pauses = 0;     // cumulative
};

class TelemetryRecorder {
 public:
  TelemetryRecorder(sim::Scheduler& sched,
                    std::vector<net::SwitchDevice*> switches,
                    sim::Time period = sim::microseconds(100));

  void start();
  void stop();

  [[nodiscard]] const std::vector<TelemetrySample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }

  /// Render all samples as CSV (header + one row per sample).
  [[nodiscard]] std::string to_csv() const;

  /// Write the CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  void sample_all();

  sim::Scheduler& sched_;
  std::vector<net::SwitchDevice*> switches_;
  sim::Time period_;
  std::vector<TelemetrySample> samples_;
  std::vector<std::int64_t> last_tx_bytes_;
  std::vector<std::int64_t> last_marked_bytes_;
  sim::Time last_sample_;
  sim::EventId ev_;
  bool running_ = false;
};

}  // namespace pet::exp
