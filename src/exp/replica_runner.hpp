#pragma once
// ReplicaRunner: data-parallel IPPO training over N independent simulation
// replicas.
//
// Each replica owns a complete simulation stack — its own sim::Scheduler,
// network, transport, workload generators and PET agents — so replicas
// share no mutable state and can run on any number of worker threads.
// Replica r of episode e seeds every stream from the deterministic chain
// Stream(seed).child("replica").child(r).child(e), so the experience each
// replica collects depends only on (seed, r, e) — never on which thread ran
// it or in what order replicas finished.
//
// Per episode:
//   1. the central per-switch policies are copied into every replica;
//   2. replicas simulate one episode with local PPO updates disabled,
//      accumulating on-policy rollouts per agent;
//   3. the harvested rollouts are merged in replica order — per agent — into
//      one PpoAgent::update_merged() call on the central policy (GAE never
//      crosses a replica boundary).
//
// The merge consumes slices in replica order, so the updated weights are
// bitwise identical for a given (seed, replicas) whatever the thread count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/checkpoint.hpp"
#include "sim/profiler.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace pet::exp {

struct ReplicaRunnerConfig {
  /// Independent replicas per episode.
  std::int32_t replicas = 4;
  /// Worker threads (0 = hardware concurrency, capped at `replicas`).
  std::int32_t threads = 0;
  /// Training episodes (central update rounds).
  std::int32_t episodes = 1;
  /// Simulated time each replica runs per episode; zero means "use the
  /// scenario's pretrain window".
  sim::Time episode_length = sim::Time::zero();
};

class ReplicaRunner {
 public:
  struct EpisodeStats {
    std::int32_t episode = 0;
    /// Mean reward over every transition harvested this episode.
    double mean_reward = 0.0;
    /// Merged transitions across all replicas and agents.
    std::size_t transitions = 0;
    /// Update statistics averaged over agents that had experience.
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
  };

  struct RunStats {
    std::vector<EpisodeStats> episodes;
    double wall_seconds = 0.0;
    /// Replica-episodes simulated per wall-clock second.
    double replicas_per_sec = 0.0;
    /// FNV-1a digest over the merged experience (replica order): equal
    /// digests across runs prove thread-count independence bitwise.
    std::uint64_t rollout_digest = 0;
  };

  /// Requires a PET scheme (kPet / kPetAblation); throws
  /// std::invalid_argument otherwise or when cfg.replicas < 1.
  ReplicaRunner(const ScenarioConfig& scenario, ReplicaRunnerConfig cfg);
  ~ReplicaRunner();

  ReplicaRunner(ReplicaRunner&&) noexcept = default;
  ReplicaRunner& operator=(ReplicaRunner&&) noexcept = default;

  /// Run all configured episodes; cumulative across calls.
  RunStats run();
  /// Run exactly one episode (central update round).
  EpisodeStats run_episode();

  [[nodiscard]] std::size_t num_agents() const;
  /// Central (post-merge) weights of agent `i`'s policy.
  [[nodiscard]] std::vector<double> agent_weights(std::size_t i) const;
  /// Flat digest-friendly concatenation of every agent's central weights.
  [[nodiscard]] std::vector<double> all_weights() const;
  [[nodiscard]] const ScenarioConfig& scenario() const { return scenario_; }
  [[nodiscard]] const ReplicaRunnerConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t last_digest() const { return digest_; }
  /// Next episode index (== episodes completed so far).
  [[nodiscard]] std::int32_t next_episode() const { return next_episode_; }
  /// Per-episode statistics accumulated across run()/run_episode() calls
  /// (survives checkpoint/restore).
  [[nodiscard]] const std::vector<EpisodeStats>& history() const {
    return history_;
  }

  // --- checkpoint / resume --------------------------------------------------
  // Episodes are the checkpoint boundary: episode e is a pure function of
  // (central weights at its start, seed, r, e), so a runner restored from a
  // checkpoint taken after episode e continues with a bitwise-identical
  // trajectory — same merged updates, same chained rollout digest — as the
  // uninterrupted run. Mid-episode state (live schedulers) is never saved.

  /// Write the runner's sections ("replica-runner/meta" + one per agent
  /// policy) into `ckpt`.
  void save_state(sim::Checkpoint& ckpt) const;
  /// Restore from checkpoint sections; false (runner untouched or safely
  /// unusable) on scenario-fingerprint mismatch or corrupted sections.
  [[nodiscard]] bool load_state(const sim::Checkpoint& ckpt);

  /// Durable (atomic tmp + fsync + rename) checkpoint file.
  [[nodiscard]] bool save_checkpoint(const std::string& path) const;
  /// Load + validate a checkpoint file; false on any error (`error`
  /// receives the reason when non-null).
  [[nodiscard]] bool load_checkpoint(const std::string& path,
                                     std::string* error = nullptr);

  /// Observe episode phases ("episode.simulate" / "episode.merge") with an
  /// external profiler. The profiler is touched only from the coordinating
  /// thread, never from replica workers; pass nullptr to detach.
  void set_profiler(sim::Profiler* profiler) { profiler_ = profiler; }

 private:
  struct ReplicaResult;
  /// Simulate replica `r` of episode `e` starting from `weights` (one
  /// vector per agent). Runs on a worker thread; touches no shared state.
  [[nodiscard]] ReplicaResult run_replica(
      std::int32_t r, std::int32_t e,
      const std::vector<std::vector<double>>& weights) const;

  // Workers touch only their ReplicaResult slot and the weights snapshot
  // passed by const ref; everything below stays on the coordinator thread.
  ScenarioConfig scenario_ PET_THREAD_CONFINED(coordinator);
  ReplicaRunnerConfig cfg_ PET_THREAD_CONFINED(coordinator);
  /// Central model holder: constructed once, never simulated; its PET
  /// agents' policies are the merge targets.
  std::unique_ptr<Experiment> central_ PET_THREAD_CONFINED(coordinator);
  std::int32_t next_episode_ PET_THREAD_CONFINED(coordinator) = 0;
  std::uint64_t digest_ PET_THREAD_CONFINED(coordinator) = 0;
  std::vector<EpisodeStats> history_ PET_THREAD_CONFINED(coordinator);
  sim::Profiler* profiler_ PET_THREAD_CONFINED(coordinator) = nullptr;
};

}  // namespace pet::exp
