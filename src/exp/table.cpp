#include "exp/table.hpp"

#include <algorithm>
#include <cstdarg>

namespace pet::exp {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_sep = [&] {
    std::fputc('+', out);
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), s.c_str());
    }
    std::fputc('\n', out);
  };
  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace pet::exp
