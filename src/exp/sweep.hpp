#pragma once
// exp::SweepRunner — fault-tolerant orchestration of a declarative
// experiment grid on top of ReplicaRunner / Experiment.
//
// A sweep expands a SweepGrid (scheme × load × seed axes over a base
// scenario) into independent points, schedules them over a worker pool and
// makes the whole run crash-safe:
//
//   * every point writes a durable per-point run-artifact
//     (<out_dir>/point_<id>.json, atomic tmp+fsync+rename) — a valid
//     artifact IS the completion marker, so a re-run with resume=true
//     skips finished points;
//   * training points (PET schemes with train_episodes > 0) checkpoint the
//     ReplicaRunner every checkpoint_every episodes to
//     <out_dir>/point_<id>.ckpt; a resumed or retried attempt reloads the
//     latest checkpoint and continues bitwise-identically (episodes are
//     pure functions of weights-at-boundary and the seed tree);
//   * each attempt runs under a watchdog deadline: a point that exceeds it
//     is cooperatively cancelled, given a grace period, then abandoned and
//     retried with capped exponential backoff and deterministic seeded
//     jitter; a point that exhausts its retries is quarantined while the
//     rest of the grid completes;
//   * the merged sweep artifact (pet.run-artifact/1) nests every point's
//     metrics under its id and records per-point execution status
//     (ok/resumed/retried/quarantined) in the manifest — the manifest is
//     stripped by golden canonicalization, so an interrupted-and-resumed
//     sweep byte-matches an uninterrupted one.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/json.hpp"
#include "exp/scheme.hpp"
#include "net/topology_spec.hpp"
#include "sim/thread_annotations.hpp"

namespace pet::exp {

/// One expanded grid point: a self-contained scenario plus its identity
/// within the sweep.
struct SweepPoint {
  std::int32_t index = 0;
  /// Stable id ("<scheme>_load<g>_seed<n>", prefixed "<topology>_" when the
  /// grid sweeps topologies) naming the point's artifact and checkpoint
  /// files.
  std::string id;
  ScenarioConfig cfg;
  /// Training points run ReplicaRunner episodes; eval points run the
  /// scenario timeline once.
  bool training = false;
};

/// One topology axis value: the name keys the point id (keep it short and
/// filename-safe, e.g. "ft8" or "interdc").
struct NamedTopologySpec {
  std::string name;
  net::TopologySpec spec;
};

/// Declarative grid: the cartesian product of the axes over `base`.
/// Axes left empty inherit the base scenario's value (a single point on
/// that axis; an empty topology axis also keeps the historical un-prefixed
/// point ids).
struct SweepGrid {
  std::string name = "sweep";
  ScenarioConfig base{};
  std::vector<NamedTopologySpec> topologies;
  std::vector<Scheme> schemes;
  std::vector<double> loads;
  std::vector<std::uint64_t> seeds;

  [[nodiscard]] std::vector<SweepPoint> expand(
      std::int32_t train_episodes) const;
};

struct SweepRunnerConfig {
  /// Directory for per-point artifacts, checkpoints and the merged sweep
  /// artifact (created if missing).
  std::string out_dir = ".";
  /// Concurrent points (0 = hardware concurrency, capped at grid size).
  std::int32_t threads = 0;
  /// Skip points whose artifact already validates; resume partial training
  /// points from their latest checkpoint.
  bool resume = false;

  /// ReplicaRunner episodes for training points (0 = every point is a
  /// plain eval run).
  std::int32_t train_episodes = 0;
  /// Replicas per training episode.
  std::int32_t replicas = 2;
  /// Checkpoint cadence in episodes (0 disables checkpointing).
  std::int32_t checkpoint_every = 1;

  /// Wall-clock deadline per attempt; 0 disables the watchdog.
  double watchdog_seconds = 0.0;
  /// Extra wall-clock granted after cooperative cancellation before the
  /// attempt is abandoned.
  double grace_seconds = 2.0;
  /// Retries after the first failed attempt before quarantine.
  std::int32_t max_retries = 2;
  /// Exponential backoff between retries: min(cap, base * 2^attempt)
  /// scaled by deterministic jitter in [0.5, 1.0).
  double backoff_base_seconds = 0.5;
  double backoff_cap_seconds = 30.0;

  /// Fault injection for crash-safety tests: terminate the process
  /// (std::_Exit) after this many durable writes (checkpoints + point
  /// artifacts); 0 disables.
  std::int32_t crash_after_writes = 0;
  /// Fault injection for watchdog tests: called at the start of every
  /// attempt on the worker thread (point, attempt index). May block (to
  /// simulate a hang) or throw (to simulate a crash-level failure).
  std::function<void(const SweepPoint&, std::int32_t)> attempt_hook;
};

class SweepRunner {
 public:
  struct PointStatus {
    std::string id;
    /// "ok" | "resumed" | "retried" | "quarantined".
    std::string status = "ok";
    /// Attempts executed by THIS run (0 = artifact reused from a previous
    /// run).
    std::int32_t attempts = 0;
    /// Episode the first executing attempt continued from (training points
    /// restored from a checkpoint; 0 = started fresh).
    std::int32_t resumed_from_episode = 0;
    bool completed = false;
  };

  struct Result {
    std::vector<PointStatus> points;
    std::int32_t completed = 0;
    std::int32_t quarantined = 0;
    /// Path of the merged sweep artifact.
    std::string artifact_path;
    [[nodiscard]] bool all_completed() const { return quarantined == 0; }
  };

  SweepRunner(SweepGrid grid, SweepRunnerConfig cfg);

  /// Run (or resume) the whole grid and write the merged artifact.
  [[nodiscard]] Result run();

  /// Cooperative external cancellation (e.g. from a signal handler): the
  /// sweep stops scheduling new points and cancels running attempts; every
  /// durable artifact written so far remains valid for resume.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] const SweepGrid& grid() const { return grid_; }
  [[nodiscard]] const SweepRunnerConfig& config() const { return cfg_; }

  /// File naming scheme shared with tests and the CLI.
  [[nodiscard]] std::string point_artifact_path(const SweepPoint& p) const;
  [[nodiscard]] std::string point_checkpoint_path(const SweepPoint& p) const;
  [[nodiscard]] std::string merged_artifact_path() const;

 private:
  struct AttemptOutcome {
    bool ok = false;
    bool resumed = false;
    std::int32_t resumed_from_episode = 0;
    std::string error;
  };

  /// Execute one attempt of `point` on the calling thread, polling
  /// `cancel`. Writes the point artifact on success. `allow_resume` lets
  /// training attempts continue from an on-disk checkpoint (true when the
  /// sweep resumes or the attempt is a retry).
  [[nodiscard]] AttemptOutcome run_attempt(const SweepPoint& point,
                                           const std::atomic<bool>& cancel,
                                           bool allow_resume);
  [[nodiscard]] AttemptOutcome run_training_attempt(
      const SweepPoint& point, const std::atomic<bool>& cancel,
      bool allow_resume);
  [[nodiscard]] AttemptOutcome run_eval_attempt(
      const SweepPoint& point, const std::atomic<bool>& cancel);
  /// Full per-point supervision: resume check, attempt/watchdog/retry loop.
  [[nodiscard]] PointStatus run_point(const SweepPoint& point);
  /// Count a durable write and honor crash_after_writes fault injection.
  void note_durable_write();
  [[nodiscard]] bool write_point_artifact(const SweepPoint& point,
                                          const JsonValue& metrics);
  void write_merged_artifact(Result& result) const;

  SweepGrid grid_ PET_READ_SHARED;
  SweepRunnerConfig cfg_ PET_READ_SHARED;
  std::vector<SweepPoint> points_ PET_READ_SHARED;  // filled before the pool
  std::atomic<bool> stop_{false};
  std::atomic<std::int32_t> durable_writes_{0};
  /// Watchdog-abandoned attempt threads; joined at the end of run() once
  /// they observe cancellation, so they never outlive the runner.
  std::mutex abandoned_mutex_;
  std::vector<std::thread> abandoned_ PET_GUARDED_BY(abandoned_mutex_);
};

}  // namespace pet::exp
