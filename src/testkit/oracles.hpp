#pragma once
// Differential oracles: independent reference models for the state machines
// PET's results rest on. Each model is written from the governing equations
// (paper / RFC semantics), NOT from the production code, in a deliberately
// different style (scalar, eager, O(n^2) where that is simpler) — the
// property suites drive both implementations with the same generated inputs
// and demand agreement over thousands of seeds.
//
// Models:
//   red_mark_probability_ref  — RED/ECN marking probability
//   DcqcnRpRef                — DCQCN sender (RP) rate/alpha evolution
//   PfcRef                    — PFC pause/resume hysteresis per ingress port
//   gae_ref / normalize_ref   — GAE advantages via the direct double sum
//   SchedulerModel            — sorted-vector discrete-event queue

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/red_ecn.hpp"
#include "sim/time.hpp"
#include "transport/dcqcn.hpp"

namespace pet::testkit {

// --- RED/ECN -----------------------------------------------------------------

/// Marking probability per the RED rule used by DCQCN switches, computed
/// independently: 0 at or below Kmin, 1 at or beyond Kmax (also when the
/// thresholds coincide), linear interpolation scaled by Pmax in between.
[[nodiscard]] double red_mark_probability_ref(const net::RedEcnConfig& cfg,
                                              std::int64_t qlen_bytes);

// --- DCQCN RP ----------------------------------------------------------------

/// Scalar model of the DCQCN sender state machine (Zhu et al., SIGCOMM'15):
/// rate cut with the current alpha on congestion notification, alpha EWMA
/// decay on the alpha timer, and staged increase (fast recovery / additive
/// / hyper) on the increase timer and byte counter. Drive it with the same
/// cut/tick sequence the real sender experiences and compare alpha/Rc/Rt.
struct DcqcnRpRef {
  // Parameters (mirrors the DcqcnConfig subset that matters for rates).
  double gain = 1.0 / 16.0;
  double rate_ai_bps = 40e6;
  double rate_hai_bps = 400e6;
  std::int32_t fast_recovery_stages = 5;
  double line_rate_bps = 10e9;
  double min_rate_bps = 10e6;

  // State.
  double alpha = 1.0;
  double rc_bps = 0.0;  // current rate (start at line rate via init())
  double rt_bps = 0.0;  // target rate
  std::int32_t timer_stage = 0;
  std::int32_t byte_stage = 0;

  void init(const transport::DcqcnConfig& cfg, double line_bps);

  /// CNP arrival: cut with current alpha, push alpha toward 1, reset stages.
  void on_cut();
  /// Alpha timer fired: decay alpha toward 0.
  void on_alpha_tick();
  /// Increase timer fired.
  void on_increase_timer_tick();
  /// Byte counter rolled over.
  void on_byte_counter_tick();

 private:
  void increase(std::int32_t stage);
  void clamp();
};

// --- PFC ---------------------------------------------------------------------

/// Per-ingress-port PFC hysteresis: pause when buffered bytes exceed Xoff,
/// resume when they fall below Xon. Tracks cumulative pauses the way
/// SwitchDevice::pfc_pauses_sent() does.
class PfcRef {
 public:
  PfcRef(std::int64_t xoff_bytes, std::int64_t xon_bytes,
         std::int64_t shared_buffer_bytes);

  /// A data packet of `bytes` arrived on ingress `port`. Returns false when
  /// the shared buffer rejects it (the caller should not enqueue it in the
  /// mirrored system either).
  bool on_arrival(std::int32_t port, std::int64_t bytes);
  /// A data packet of `bytes` from ingress `port` finished transmission.
  void on_departure(std::int32_t port, std::int64_t bytes);

  [[nodiscard]] std::int64_t pauses_sent() const { return pauses_sent_; }
  [[nodiscard]] bool paused(std::int32_t port) const;
  [[nodiscard]] std::int64_t buffer_used() const { return buffer_used_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }

 private:
  void update(std::int32_t port);

  std::int64_t xoff_;
  std::int64_t xon_;
  std::int64_t buffer_limit_;
  std::int64_t buffer_used_ = 0;
  std::int64_t pauses_sent_ = 0;
  std::int64_t drops_ = 0;
  std::vector<std::int64_t> ingress_bytes_;
  std::vector<bool> paused_;
};

// --- Gilbert–Elliott ---------------------------------------------------------

/// Scalar reference of the two-state bursty-loss channel, written from the
/// chain's definition (Gilbert '60): an explicit state enum and the 2x2
/// transition matrix evaluated per packet. The caller supplies the two
/// uniforms each packet consumes — the transition draw, then the loss draw
/// judged against the post-transition state's loss rate — so the reference
/// can be driven with exactly the draws the production chain consumed.
class GilbertElliottRef {
 public:
  GilbertElliottRef(double p_good_to_bad, double p_bad_to_good,
                    double loss_good, double loss_bad);

  /// Advance one packet with explicit uniforms; true when the packet is
  /// lost.
  bool lose_packet(double u_transition, double u_loss);

  [[nodiscard]] bool bad() const;

 private:
  enum class State { kGood, kBad };
  double p_gb_;
  double p_bg_;
  double loss_g_;
  double loss_b_;
  State state_ = State::kGood;
};

// --- GAE ---------------------------------------------------------------------

/// Advantages via the direct definition A_t = sum_k (gamma*lambda)^k
/// delta_{t+k} (O(n^2), no recursion) and returns = A_t + V(s_t).
struct GaeRefResult {
  std::vector<double> advantages;
  std::vector<double> returns;
};
[[nodiscard]] GaeRefResult gae_ref(std::span<const double> rewards,
                                   std::span<const double> values,
                                   double bootstrap, double gamma,
                                   double lambda);

/// Standardization reference: subtract mean, divide by population stddev;
/// identity for n < 2 or stddev < 1e-8.
[[nodiscard]] std::vector<double> normalize_ref(std::span<const double> xs);

// --- Scheduler ---------------------------------------------------------------

/// Sorted-vector model of sim::Scheduler: events ordered by (time, insertion
/// sequence), stable under cancellation, run_until executes events with
/// at <= until and leaves now() at max(until, last event time).
class SchedulerModel {
 public:
  /// Returns the model's event id (parallel to the real EventId).
  std::uint64_t schedule_at(sim::Time at);
  /// True when the event was still pending.
  bool cancel(std::uint64_t id);
  /// Executes due events; returns their ids in execution order.
  std::vector<std::uint64_t> run_until(sim::Time until);

  [[nodiscard]] sim::Time now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t seq;
  };
  std::vector<Entry> events_;  // kept sorted by (at, seq)
  sim::Time now_ = sim::Time::zero();
  std::uint64_t next_seq_ = 1;
};

}  // namespace pet::testkit
