#include "testkit/property.hpp"

#include <cstdlib>

namespace pet::testkit::detail {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

RunnerEnv read_runner_env() {
  RunnerEnv env;
  env.base_seed = env_u64("PET_PBT_SEED");
  env.replay = env_u64("PET_PBT_REPLAY");
  if (const auto cases = env_u64("PET_PBT_CASES"); cases && *cases > 0) {
    env.cases = static_cast<int>(*cases);
  }
  return env;
}

std::string format_failure_report(const std::string& name, int case_index,
                                  std::uint64_t case_seed,
                                  const std::string& original,
                                  const std::string& shrunk, int shrink_steps,
                                  const std::string& reason) {
  std::string out = "property " + name + " failed (";
  out += case_index < 0 ? "replayed case" : "case " + std::to_string(case_index);
  out += ", seed " + std::to_string(case_seed) + ")\n";
  out += "  original: " + original + "\n";
  out += "  shrunk:   " + shrunk + "   [" + std::to_string(shrink_steps) +
         " shrink steps]\n";
  out += "  reason:   " + reason + "\n";
  out += "  replay:   PET_PBT_REPLAY=" + std::to_string(case_seed) +
         " <test binary> (re-runs this exact case and its deterministic "
         "shrink)";
  return out;
}

}  // namespace pet::testkit::detail
