#pragma once
// Counterexample rendering for property failures. show(v) produces a
// single-line, copy-pasteable description of a generated value; extend for
// a custom type either by giving it operator<< or by defining a free
// function `testkit_show(const T&) -> std::string` in the type's namespace
// (found by ADL).

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace pet::testkit {

template <typename T>
[[nodiscard]] std::string show(const T& v);

namespace detail {

template <typename T>
concept HasAdlShow = requires(const T& v) {
  { testkit_show(v) } -> std::convertible_to<std::string>;
};

template <typename T>
concept Streamable = requires(std::ostringstream& os, const T& v) { os << v; };

inline void show_bytes(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7F && c != '"' && c != '\\') {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", u);
      out += buf;
    }
  }
  out += '"';
}

template <typename T>
std::string show_compound(const T& v) {
  if constexpr (Streamable<T>) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<value>";
  }
}

template <typename T>
std::string show_compound(const std::vector<T>& v) {
  constexpr std::size_t kMaxShown = 48;
  std::string out = "[";
  for (std::size_t i = 0; i < v.size() && i < kMaxShown; ++i) {
    if (i > 0) out += ", ";
    out += show(v[i]);
  }
  if (v.size() > kMaxShown) {
    out += ", … (" + std::to_string(v.size()) + " total)";
  }
  out += "]";
  return out;
}

template <typename A, typename B>
std::string show_compound(const std::pair<A, B>& v) {
  return "(" + show(v.first) + ", " + show(v.second) + ")";
}

template <typename... Ts>
std::string show_compound(const std::tuple<Ts...>& v) {
  std::string out = "(";
  bool first = true;
  std::apply(
      [&](const Ts&... parts) {
        (
            [&] {
              if (!first) out += ", ";
              first = false;
              out += show(parts);
            }(),
            ...);
      },
      v);
  out += ")";
  return out;
}

}  // namespace detail

template <typename T>
std::string show(const T& v) {
  if constexpr (detail::HasAdlShow<T>) {
    return testkit_show(v);
  } else if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_same_v<T, std::string>) {
    std::string out;
    detail::show_bytes(out, v);
    return out;
  } else if constexpr (std::is_floating_point_v<T>) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
    return buf;
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(v);
  } else {
    return detail::show_compound(v);
  }
}

}  // namespace pet::testkit
