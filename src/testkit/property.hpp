#pragma once
// Property runner: drives a Gen<T> through N cases, shrinks failures and
// reports a replayable seed.
//
// Every case is generated from seed = derive_seed(base, index); the base
// seed comes from PET_PBT_SEED (env) or a per-property default derived from
// the property name. When a case fails, the runner shrinks it greedily
// (deterministic — no RNG involved) and reports:
//
//   property RedOracle.MatchesModel failed (case 37, seed 1234567890)
//     original: (203145, 17, 0.52)
//     shrunk:   (0, 17, 0.5)   [12 shrink steps]
//     reason:   PROP_ASSERT failed: ...
//     replay:   PET_PBT_REPLAY=1234567890 ./test_binary --gtest_filter=...
//
// Re-running with PET_PBT_REPLAY=<seed> executes exactly that case (plus
// its deterministic shrink), reproducing the same minimal counterexample.
//
// Environment knobs:
//   PET_PBT_SEED=N    base seed for the whole run (default: per-property)
//   PET_PBT_CASES=N   override the case count of every property
//   PET_PBT_REPLAY=N  run a single case from this exact seed
//
// Properties signal failure by throwing (use the PROP_ASSERT* macros);
// gtest's EXPECT/ASSERT macros do NOT integrate with shrinking here.

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "sim/rng.hpp"
#include "testkit/gen.hpp"
#include "testkit/show.hpp"

namespace pet::testkit {

/// Thrown by PROP_ASSERT* inside a property body.
class PropertyFailure : public std::exception {
 public:
  explicit PropertyFailure(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override {
    return message_.c_str();
  }

 private:
  std::string message_;
};

struct PropertyConfig {
  /// Cases per run (PET_PBT_CASES overrides).
  int cases = 200;
  /// Total shrink-candidate evaluations allowed per failure.
  int max_shrink_evals = 2000;
  /// Base seed; 0 = derive from the property name (PET_PBT_SEED overrides).
  std::uint64_t seed = 0;
};

struct PropertyOutcome {
  bool failed = false;
  /// Full report (seed, counterexamples, replay instructions).
  std::string message;
  /// The seed that reproduces the failing case.
  std::uint64_t failing_seed = 0;
  /// Rendered minimal counterexample (after shrinking).
  std::string shrunk;
  /// Rendered original counterexample (before shrinking).
  std::string original;
  /// Number of successful shrink steps taken.
  int shrink_steps = 0;
};

namespace detail {

/// Reads the env knobs once per call (cheap; not cached so tests can tweak).
struct RunnerEnv {
  std::optional<std::uint64_t> base_seed;
  std::optional<int> cases;
  std::optional<std::uint64_t> replay;
};
[[nodiscard]] RunnerEnv read_runner_env();

[[nodiscard]] std::string format_failure_report(
    const std::string& name, int case_index, std::uint64_t case_seed,
    const std::string& original, const std::string& shrunk, int shrink_steps,
    const std::string& reason);

}  // namespace detail

/// Run `check` over generated inputs; never throws, never touches gtest —
/// inspect the returned outcome (the PROPERTY macro turns it into a test
/// failure).
template <typename T>
[[nodiscard]] PropertyOutcome run_property_core(
    const std::string& name, const Gen<T>& gen,
    const std::function<void(const T&)>& check, PropertyConfig cfg = {}) {
  const detail::RunnerEnv env = detail::read_runner_env();
  const std::uint64_t base_seed =
      env.base_seed ? *env.base_seed
                    : (cfg.seed != 0 ? cfg.seed
                                     : sim::derive_seed(0x5045542D504254ULL,
                                                        name));
  const int cases = env.cases ? *env.cases : cfg.cases;

  // Runs the property, capturing the failure reason.
  const auto fails = [&check](const T& value, std::string* reason) {
    try {
      check(value);
      return false;
    } catch (const std::exception& e) {
      if (reason != nullptr) *reason = e.what();
      return true;
    } catch (...) {
      if (reason != nullptr) *reason = "non-standard exception";
      return true;
    }
  };

  const auto run_case = [&](std::uint64_t case_seed,
                            int case_index) -> std::optional<PropertyOutcome> {
    sim::Rng rng(case_seed);
    Shrinkable<T> current = gen(rng);
    std::string reason;
    if (!fails(current.value(), &reason)) return std::nullopt;

    PropertyOutcome out;
    out.failed = true;
    out.failing_seed = case_seed;
    out.original = show(current.value());

    // Greedy deterministic shrink: repeatedly take the first failing
    // candidate until none fails or the evaluation budget runs out.
    int evals = 0;
    bool progressed = true;
    while (progressed && evals < cfg.max_shrink_evals) {
      progressed = false;
      for (Shrinkable<T>& cand : current.shrinks()) {
        if (++evals > cfg.max_shrink_evals) break;
        if (fails(cand.value(), &reason)) {
          current = std::move(cand);
          ++out.shrink_steps;
          progressed = true;
          break;
        }
      }
    }
    // Re-run the minimal case so `reason` describes it (not a larger one).
    std::string final_reason;
    fails(current.value(), &final_reason);
    out.shrunk = show(current.value());
    out.message = detail::format_failure_report(
        name, case_index, case_seed, out.original, out.shrunk,
        out.shrink_steps, final_reason.empty() ? reason : final_reason);
    return out;
  };

  if (env.replay) {
    if (auto out = run_case(*env.replay, -1)) return *out;
    return {};
  }
  const sim::Stream stream = sim::Stream(base_seed).child("case");
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t case_seed =
        stream.child(static_cast<std::uint64_t>(i)).seed();
    if (auto out = run_case(case_seed, i)) return *out;
  }
  return {};
}

}  // namespace pet::testkit

// --- macros ------------------------------------------------------------------

/// Registers a property as a regular gtest TEST. Usage:
///
///   PROPERTY(RedOracle, NeverExceedsOne,
///            tuple_of(integers(0, 1 << 20), reals(0.0, 1.0))) {
///     const auto& [qlen, pmax] = arg;
///     PROP_ASSERT(mark_probability(qlen, pmax) <= 1.0);
///   }
///
/// The body is the property check; `arg` is a const reference to one
/// generated value. PROPERTY_CASES additionally pins the case count.
#define PROPERTY_CASES(Suite, Name, Cases, ...)                               \
  namespace {                                                                 \
  inline auto PetPropGen_##Suite##_##Name() { return (__VA_ARGS__); }         \
  struct PetProp_##Suite##_##Name {                                           \
    static auto generator() { return PetPropGen_##Suite##_##Name(); }         \
    using Value = decltype(PetPropGen_##Suite##_##Name())::value_type;        \
    static void check(const Value& arg);                                      \
  };                                                                          \
  }                                                                           \
  TEST(Suite, Name) {                                                         \
    ::pet::testkit::PropertyConfig prop_cfg;                                  \
    prop_cfg.cases = (Cases);                                                 \
    const ::pet::testkit::PropertyOutcome outcome =                           \
        ::pet::testkit::run_property_core<PetProp_##Suite##_##Name::Value>(   \
            #Suite "." #Name, PetProp_##Suite##_##Name::generator(),          \
            &PetProp_##Suite##_##Name::check, prop_cfg);                      \
    if (outcome.failed) GTEST_FAIL() << outcome.message;                      \
  }                                                                           \
  void PetProp_##Suite##_##Name::check([[maybe_unused]] const Value& arg)

#define PROPERTY(Suite, Name, ...) PROPERTY_CASES(Suite, Name, 200, __VA_ARGS__)

#define PET_PROP_STRINGIZE_IMPL(x) #x
#define PET_PROP_STRINGIZE(x) PET_PROP_STRINGIZE_IMPL(x)

/// Failure-signalling assertions for property bodies (they throw, which the
/// runner catches and shrinks on).
#define PROP_ASSERT(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      throw ::pet::testkit::PropertyFailure(                                  \
          "PROP_ASSERT failed: " #cond " at " __FILE__                        \
          ":" PET_PROP_STRINGIZE(__LINE__));                                  \
    }                                                                         \
  } while (false)

#define PROP_ASSERT_EQ(a, b)                                                  \
  do {                                                                        \
    const auto prop_lhs_ = (a);                                               \
    const auto prop_rhs_ = (b);                                               \
    if (!(prop_lhs_ == prop_rhs_)) {                                          \
      throw ::pet::testkit::PropertyFailure(                                  \
          std::string("PROP_ASSERT_EQ failed: " #a " == " #b " (") +          \
          ::pet::testkit::show(prop_lhs_) + " vs " +                          \
          ::pet::testkit::show(prop_rhs_) + ") at " __FILE__                  \
          ":" PET_PROP_STRINGIZE(__LINE__));                                  \
    }                                                                         \
  } while (false)

#define PROP_ASSERT_NEAR(a, b, tol)                                           \
  do {                                                                        \
    const double prop_lhs_ = static_cast<double>(a);                          \
    const double prop_rhs_ = static_cast<double>(b);                          \
    const double prop_tol_ = static_cast<double>(tol);                        \
    const double prop_diff_ = prop_lhs_ > prop_rhs_ ? prop_lhs_ - prop_rhs_   \
                                                    : prop_rhs_ - prop_lhs_;  \
    if (!(prop_diff_ <= prop_tol_)) {                                         \
      throw ::pet::testkit::PropertyFailure(                                  \
          std::string("PROP_ASSERT_NEAR failed: " #a " vs " #b " (") +        \
          ::pet::testkit::show(prop_lhs_) + " vs " +                          \
          ::pet::testkit::show(prop_rhs_) + ", |diff|=" +                     \
          ::pet::testkit::show(prop_diff_) + " > tol=" +                      \
          ::pet::testkit::show(prop_tol_) + ") at " __FILE__                  \
          ":" PET_PROP_STRINGIZE(__LINE__));                                  \
    }                                                                         \
  } while (false)
