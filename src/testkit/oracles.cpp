#include "testkit/oracles.hpp"

#include <algorithm>
#include <cmath>

namespace pet::testkit {

// --- RED/ECN -----------------------------------------------------------------

double red_mark_probability_ref(const net::RedEcnConfig& cfg,
                                std::int64_t qlen_bytes) {
  // Written from the AQM rule, boundaries first: no marking at or below
  // Kmin, certain marking at or beyond Kmax (degenerate Kmin == Kmax marks
  // everything above the single threshold).
  if (qlen_bytes <= cfg.kmin_bytes) return 0.0;
  if (qlen_bytes >= cfg.kmax_bytes) return 1.0;
  const long double fraction =
      static_cast<long double>(qlen_bytes - cfg.kmin_bytes) /
      static_cast<long double>(cfg.kmax_bytes - cfg.kmin_bytes);
  return static_cast<double>(static_cast<long double>(cfg.pmax) * fraction);
}

// --- DCQCN RP ----------------------------------------------------------------

void DcqcnRpRef::init(const transport::DcqcnConfig& cfg, double line_bps) {
  gain = cfg.gain;
  rate_ai_bps = cfg.rate_ai_bps;
  rate_hai_bps = cfg.rate_hai_bps;
  fast_recovery_stages = cfg.fast_recovery_stages;
  line_rate_bps = line_bps;
  min_rate_bps = line_bps * cfg.min_rate_fraction;
  alpha = 1.0;
  rc_bps = line_bps;
  rt_bps = line_bps;
  timer_stage = 0;
  byte_stage = 0;
}

void DcqcnRpRef::on_cut() {
  rt_bps = rc_bps;
  rc_bps = rc_bps * (1.0 - alpha / 2.0);
  alpha = (1.0 - gain) * alpha + gain;
  clamp();
  timer_stage = 0;
  byte_stage = 0;
}

void DcqcnRpRef::on_alpha_tick() { alpha = (1.0 - gain) * alpha; }

void DcqcnRpRef::on_increase_timer_tick() {
  ++timer_stage;
  increase(timer_stage + byte_stage);
}

void DcqcnRpRef::on_byte_counter_tick() {
  ++byte_stage;
  increase(timer_stage + byte_stage);
}

void DcqcnRpRef::increase(std::int32_t stage) {
  if (stage <= fast_recovery_stages) {
    // Fast recovery: Rt untouched, Rc closes half the gap.
  } else if (stage <= 2 * fast_recovery_stages) {
    rt_bps += rate_ai_bps;
  } else {
    rt_bps += rate_hai_bps;
  }
  rc_bps = (rt_bps + rc_bps) / 2.0;
  clamp();
}

void DcqcnRpRef::clamp() {
  rc_bps = std::clamp(rc_bps, min_rate_bps, line_rate_bps);
  rt_bps = std::clamp(rt_bps, min_rate_bps, line_rate_bps);
}

// --- PFC ---------------------------------------------------------------------

PfcRef::PfcRef(std::int64_t xoff_bytes, std::int64_t xon_bytes,
               std::int64_t shared_buffer_bytes)
    : xoff_(xoff_bytes), xon_(xon_bytes), buffer_limit_(shared_buffer_bytes) {}

bool PfcRef::on_arrival(std::int32_t port, std::int64_t bytes) {
  if (buffer_used_ + bytes > buffer_limit_) {
    ++drops_;
    return false;
  }
  buffer_used_ += bytes;
  const auto idx = static_cast<std::size_t>(port);
  if (idx >= ingress_bytes_.size()) {
    ingress_bytes_.resize(idx + 1, 0);
    paused_.resize(idx + 1, false);
  }
  ingress_bytes_[idx] += bytes;
  update(port);
  return true;
}

void PfcRef::on_departure(std::int32_t port, std::int64_t bytes) {
  buffer_used_ -= bytes;
  const auto idx = static_cast<std::size_t>(port);
  if (idx >= ingress_bytes_.size()) return;
  ingress_bytes_[idx] -= bytes;
  update(port);
}

bool PfcRef::paused(std::int32_t port) const {
  const auto idx = static_cast<std::size_t>(port);
  return idx < paused_.size() && paused_[idx];
}

void PfcRef::update(std::int32_t port) {
  const auto idx = static_cast<std::size_t>(port);
  const std::int64_t used = ingress_bytes_[idx];
  if (!paused_[idx] && used > xoff_) {
    paused_[idx] = true;
    ++pauses_sent_;
  } else if (paused_[idx] && used < xon_) {
    paused_[idx] = false;
  }
}

// --- Gilbert–Elliott ---------------------------------------------------------

GilbertElliottRef::GilbertElliottRef(double p_good_to_bad,
                                     double p_bad_to_good, double loss_good,
                                     double loss_bad)
    : p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      loss_g_(loss_good),
      loss_b_(loss_bad) {}

bool GilbertElliottRef::lose_packet(double u_transition, double u_loss) {
  // Transition matrix row for the current state, evaluated eagerly.
  switch (state_) {
    case State::kGood:
      state_ = u_transition < p_gb_ ? State::kBad : State::kGood;
      break;
    case State::kBad:
      state_ = u_transition < p_bg_ ? State::kGood : State::kBad;
      break;
  }
  // Loss rate of the state the packet is actually transmitted in.
  const double loss_rate = state_ == State::kBad ? loss_b_ : loss_g_;
  return u_loss < loss_rate;
}

bool GilbertElliottRef::bad() const { return state_ == State::kBad; }

// --- GAE ---------------------------------------------------------------------

GaeRefResult gae_ref(std::span<const double> rewards,
                     std::span<const double> values, double bootstrap,
                     double gamma, double lambda) {
  const std::size_t n = rewards.size();
  GaeRefResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    double advantage = 0.0;
    double decay = 1.0;
    for (std::size_t k = t; k < n; ++k) {
      const double next_v = (k + 1 < n) ? values[k + 1] : bootstrap;
      const double delta = rewards[k] + gamma * next_v - values[k];
      advantage += decay * delta;
      decay *= gamma * lambda;
    }
    out.advantages[t] = advantage;
    out.returns[t] = advantage + values[t];
  }
  return out;
}

std::vector<double> normalize_ref(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (out.size() < 2) return out;
  double mean = 0.0;
  for (const double x : out) mean += x;
  mean /= static_cast<double>(out.size());
  double var = 0.0;
  for (const double x : out) var += (x - mean) * (x - mean);
  const double sd = std::sqrt(var / static_cast<double>(out.size()));
  if (sd < 1e-8) return out;
  for (double& x : out) x = (x - mean) / sd;
  return out;
}

// --- Scheduler ---------------------------------------------------------------

std::uint64_t SchedulerModel::schedule_at(sim::Time at) {
  const std::uint64_t seq = next_seq_++;
  const Entry entry{at, seq};
  // Keep sorted by (at, seq); new events always carry the largest seq, so
  // upper_bound on time alone preserves insertion-order ties.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), entry,
      [](const Entry& a, const Entry& b) {
        return a.at != b.at ? a.at < b.at : a.seq < b.seq;
      });
  events_.insert(pos, entry);
  return seq;
}

bool SchedulerModel::cancel(std::uint64_t id) {
  const auto it =
      std::find_if(events_.begin(), events_.end(),
                   [id](const Entry& e) { return e.seq == id; });
  if (it == events_.end()) return false;
  events_.erase(it);
  return true;
}

std::vector<std::uint64_t> SchedulerModel::run_until(sim::Time until) {
  std::vector<std::uint64_t> order;
  while (!events_.empty() && events_.front().at <= until) {
    now_ = events_.front().at;
    order.push_back(events_.front().seq);
    events_.erase(events_.begin());
  }
  if (until != sim::Time::max() && now_ < until) now_ = until;
  return order;
}

}  // namespace pet::testkit
