#pragma once
// Generator combinators for property-based testing.
//
// A Gen<T> draws a Shrinkable<T> — a value plus a lazy tree of simpler
// candidate values — from a sim::Rng. Every generated case is a pure
// function of one 64-bit seed (the runner derives per-case seeds from the
// property's base stream), so any counterexample is replayable by seed and
// shrinking is deterministic: replaying a failing seed re-runs generation
// AND shrinking, landing on the same minimal counterexample.
//
// Shrinking is integrated: combinators (map, filter, tuple_of, vector_of)
// compose the shrink trees of their inputs, so a shrunk vector of tuples is
// still a valid draw of the original generator.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace pet::testkit {

/// A value plus a lazily computed list of "one step simpler" candidates,
/// each itself shrinkable (a rose tree evaluated on demand).
template <typename T>
class Shrinkable {
 public:
  using ShrinksFn = std::function<std::vector<Shrinkable<T>>()>;

  explicit Shrinkable(T value)
      : value_(std::make_shared<T>(std::move(value))),
        shrinks_([] { return std::vector<Shrinkable<T>>{}; }) {}
  Shrinkable(T value, ShrinksFn shrinks)
      : value_(std::make_shared<T>(std::move(value))),
        shrinks_(std::move(shrinks)) {}

  [[nodiscard]] const T& value() const { return *value_; }
  [[nodiscard]] std::vector<Shrinkable<T>> shrinks() const { return shrinks_(); }

  /// Shrinkable functor: shrinks of f(x) are f applied to shrinks of x.
  template <typename F>
  [[nodiscard]] auto map(F f) const -> Shrinkable<std::invoke_result_t<F, T>> {
    using U = std::invoke_result_t<F, T>;
    Shrinkable<T> self = *this;
    return Shrinkable<U>(f(self.value()), [self, f]() {
      std::vector<Shrinkable<U>> out;
      for (const Shrinkable<T>& s : self.shrinks()) out.push_back(s.map(f));
      return out;
    });
  }

 private:
  std::shared_ptr<T> value_;  // shared: shrink closures capture cheaply
  ShrinksFn shrinks_;
};

// --- scalar shrink trees -----------------------------------------------------

/// Integer shrink tree toward `target`: try the target itself, then binary
/// bisection toward it, then the immediate predecessor.
[[nodiscard]] inline Shrinkable<std::int64_t> shrinkable_int(
    std::int64_t value, std::int64_t target) {
  return Shrinkable<std::int64_t>(value, [value, target]() {
    std::vector<Shrinkable<std::int64_t>> out;
    if (value == target) return out;
    out.push_back(shrinkable_int(target, target));
    std::int64_t delta = value - target;
    // Bisect: target + delta/2, target + delta/4, ...
    for (std::int64_t d = delta / 2; d != 0; d /= 2) {
      out.push_back(shrinkable_int(target + d, target));
    }
    const std::int64_t prev = value - (delta > 0 ? 1 : -1);
    if (prev != target && (out.empty() || out.back().value() != prev)) {
      out.push_back(shrinkable_int(prev, target));
    }
    return out;
  });
}

/// Real shrink tree toward `target`: the target, then halvings of the
/// distance, then a rounded version of the value (integers read better in
/// counterexamples than 17 significant digits).
[[nodiscard]] inline Shrinkable<double> shrinkable_real(double value,
                                                        double target) {
  return Shrinkable<double>(value, [value, target]() {
    std::vector<Shrinkable<double>> out;
    if (value == target) return out;
    out.push_back(shrinkable_real(target, target));
    double delta = value - target;
    for (int i = 0; i < 16; ++i) {
      delta /= 2.0;
      const double cand = target + delta;
      if (cand == value || cand == target) break;
      out.push_back(shrinkable_real(cand, target));
    }
    const double rounded =
        static_cast<double>(static_cast<std::int64_t>(value));
    if (rounded != value && ((target <= rounded && rounded < value) ||
                             (value < rounded && rounded <= target))) {
      out.push_back(shrinkable_real(rounded, target));
    }
    return out;
  });
}

// --- Gen<T> ------------------------------------------------------------------

template <typename T>
class Gen {
 public:
  using value_type = T;
  using Fn = std::function<Shrinkable<T>(sim::Rng&)>;

  explicit Gen(Fn fn) : fn_(std::move(fn)) {}

  [[nodiscard]] Shrinkable<T> operator()(sim::Rng& rng) const {
    return fn_(rng);
  }

  template <typename F>
  [[nodiscard]] auto map(F f) const -> Gen<std::invoke_result_t<F, T>> {
    using U = std::invoke_result_t<F, T>;
    Fn fn = fn_;
    return Gen<U>([fn, f](sim::Rng& rng) { return fn(rng).map(f); });
  }

  /// Keep drawing until `pred` holds (bounded); shrink candidates that fail
  /// the predicate are pruned together with their subtrees.
  [[nodiscard]] Gen<T> filter(std::function<bool(const T&)> pred) const {
    Fn fn = fn_;
    return Gen<T>([fn, pred](sim::Rng& rng) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        Shrinkable<T> s = fn(rng);
        if (pred(s.value())) return filter_shrinkable(std::move(s), pred);
      }
      // Give up gracefully: return the last draw unfiltered rather than
      // looping forever on an impossible predicate.
      return fn(rng);
    });
  }

 private:
  static Shrinkable<T> filter_shrinkable(Shrinkable<T> s,
                                         std::function<bool(const T&)> pred) {
    return Shrinkable<T>(s.value(), [s, pred]() {
      std::vector<Shrinkable<T>> out;
      for (Shrinkable<T>& cand : s.shrinks()) {
        if (pred(cand.value())) {
          out.push_back(filter_shrinkable(std::move(cand), pred));
        }
      }
      return out;
    });
  }

  Fn fn_;
};

// --- primitive generators ----------------------------------------------------

/// Uniform integer in [lo, hi] (inclusive); shrinks toward 0 when the range
/// contains it, else toward lo.
[[nodiscard]] inline Gen<std::int64_t> integers(std::int64_t lo,
                                                std::int64_t hi) {
  const std::int64_t target = (lo <= 0 && 0 <= hi) ? 0 : lo;
  return Gen<std::int64_t>([lo, hi, target](sim::Rng& rng) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    const std::int64_t v =
        lo + static_cast<std::int64_t>(span == 0 ? rng() : rng.uniform_int(span));
    return shrinkable_int(v, target);
  });
}

/// Uniform real in [lo, hi); shrinks toward 0 when inside the range, else lo.
[[nodiscard]] inline Gen<double> reals(double lo, double hi) {
  const double target = (lo <= 0.0 && 0.0 <= hi) ? 0.0 : lo;
  return Gen<double>([lo, hi, target](sim::Rng& rng) {
    return shrinkable_real(rng.uniform(lo, hi), target);
  });
}

[[nodiscard]] inline Gen<bool> booleans() {
  return Gen<bool>([](sim::Rng& rng) {
    const bool v = rng.bernoulli(0.5);
    return Shrinkable<bool>(v, [v]() {
      std::vector<Shrinkable<bool>> out;
      if (v) out.push_back(Shrinkable<bool>(false));
      return out;
    });
  });
}

template <typename T>
[[nodiscard]] Gen<T> constant(T v) {
  return Gen<T>([v](sim::Rng&) { return Shrinkable<T>(v); });
}

/// Uniform choice from a fixed list; shrinks toward earlier elements (put
/// the simplest first).
template <typename T>
[[nodiscard]] Gen<T> element_of(std::vector<T> options) {
  auto opts = std::make_shared<std::vector<T>>(std::move(options));
  return integers(0, static_cast<std::int64_t>(opts->size()) - 1)
      .map([opts](std::int64_t i) {
        return (*opts)[static_cast<std::size_t>(i)];
      });
}

// --- tuple combinator --------------------------------------------------------

namespace detail {

template <typename Tuple, typename Parts, std::size_t... Is>
Shrinkable<Tuple> combine_tuple(Parts parts, std::index_sequence<Is...> seq) {
  Tuple value{std::get<Is>(parts).value()...};
  return Shrinkable<Tuple>(std::move(value), [parts, seq]() {
    std::vector<Shrinkable<Tuple>> out;
    // Shrink one component at a time, holding the others fixed.
    (
        [&] {
          for (auto& cand : std::get<Is>(parts).shrinks()) {
            auto next = parts;
            std::get<Is>(next) = cand;
            out.push_back(combine_tuple<Tuple>(std::move(next), seq));
          }
        }(),
        ...);
    return out;
  });
}

}  // namespace detail

/// Draws each component in order (left to right), shrinks them one at a
/// time — the workhorse for multi-parameter properties.
template <typename... Ts>
[[nodiscard]] Gen<std::tuple<Ts...>> tuple_of(Gen<Ts>... gens) {
  using Tuple = std::tuple<Ts...>;
  return Gen<Tuple>([gens...](sim::Rng& rng) {
    // Explicit sequencing: braced-init-list evaluation order is left to
    // right, keeping draws reproducible across compilers.
    std::tuple<Shrinkable<Ts>...> parts{gens(rng)...};
    return detail::combine_tuple<Tuple>(
        std::move(parts), std::index_sequence_for<Ts...>{});
  });
}

// --- vector combinator -------------------------------------------------------

namespace detail {

template <typename T>
Shrinkable<std::vector<T>> combine_vector(std::vector<Shrinkable<T>> parts,
                                          std::size_t min_size) {
  std::vector<T> value;
  value.reserve(parts.size());
  for (const auto& p : parts) value.push_back(p.value());
  return Shrinkable<std::vector<T>>(std::move(value), [parts, min_size]() {
    std::vector<Shrinkable<std::vector<T>>> out;
    const std::size_t n = parts.size();
    // 1. Structural shrinks: drop the second half, then single elements.
    if (n > min_size) {
      const std::size_t keep = std::max(min_size, n / 2);
      if (keep < n) {
        std::vector<Shrinkable<T>> half(parts.begin(),
                                        parts.begin() + static_cast<long>(keep));
        out.push_back(combine_vector(std::move(half), min_size));
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<Shrinkable<T>> fewer;
        fewer.reserve(n - 1);
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) fewer.push_back(parts[j]);
        }
        out.push_back(combine_vector(std::move(fewer), min_size));
      }
    }
    // 2. Element shrinks: simplify one element at a time.
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& cand : parts[i].shrinks()) {
        auto next = parts;
        next[i] = cand;
        out.push_back(combine_vector(std::move(next), min_size));
      }
    }
    return out;
  });
}

}  // namespace detail

/// Vector of `elem` draws with size uniform in [min_size, max_size];
/// shrinks by removing elements (never below min_size), then by shrinking
/// surviving elements.
template <typename T>
[[nodiscard]] Gen<std::vector<T>> vector_of(Gen<T> elem, std::size_t min_size,
                                            std::size_t max_size) {
  return Gen<std::vector<T>>([elem, min_size, max_size](sim::Rng& rng) {
    const std::size_t n =
        min_size + static_cast<std::size_t>(
                       rng.uniform_int(max_size - min_size + 1));
    std::vector<Shrinkable<T>> parts;
    parts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) parts.push_back(elem(rng));
    return detail::combine_vector(std::move(parts), min_size);
  });
}

/// Weighted choice between alternative generators of the same type. The
/// chosen alternative's shrinks are kept; there is no cross-alternative
/// shrinking (put the simplest generator first and give it weight).
template <typename T>
[[nodiscard]] Gen<T> frequency(
    std::vector<std::pair<std::uint64_t, Gen<T>>> choices) {
  auto opts = std::make_shared<std::vector<std::pair<std::uint64_t, Gen<T>>>>(
      std::move(choices));
  std::uint64_t total = 0;
  for (const auto& [w, g] : *opts) total += w;
  return Gen<T>([opts, total](sim::Rng& rng) {
    std::uint64_t pick = rng.uniform_int(total);
    for (const auto& [w, g] : *opts) {
      if (pick < w) return g(rng);
      pick -= w;
    }
    return opts->back().second(rng);
  });
}

template <typename T>
[[nodiscard]] Gen<T> one_of(std::vector<Gen<T>> choices) {
  std::vector<std::pair<std::uint64_t, Gen<T>>> weighted;
  for (auto& g : choices) weighted.emplace_back(1, std::move(g));
  return frequency(std::move(weighted));
}

}  // namespace pet::testkit
