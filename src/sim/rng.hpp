#pragma once
// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from its own named
// stream derived from a single scenario seed, so runs are reproducible and
// adding a new consumer does not perturb existing streams.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pet::sim {

/// SplitMix64 — used to expand seeds into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), a fast high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) for n > 0 (unbiased via rejection).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n);

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Current stream position, for checkpointing. Restoring via `set_state`
  /// resumes the exact draw sequence.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Derive a child seed from a parent seed and a stream name; collisions are
/// as unlikely as 64-bit hash collisions. Used to give each component
/// (arrivals, flow sizes, ECMP, agents, ...) an independent stream.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t parent, std::string_view stream_name);

/// Numeric-index variant for homogeneous families (replica 0..N-1, agent
/// 0..A-1) where a name would just be a formatted integer.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index);

/// A node in the deterministic seed tree rooted at the scenario seed.
///
/// Components receive a Stream instead of a raw seed and split it further
/// (`child("bg")`, `child(replica_id)`), so every consumer owns an
/// independent reproducible sequence and adding a consumer never perturbs
/// its siblings. Replica parallelism leans on this: replica r of a run
/// seeds everything from `Stream(seed).child("replica").child(r)`, making
/// results a pure function of (seed, r) — never of thread count.
class Stream {
 public:
  constexpr explicit Stream(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] Stream child(std::string_view name) const {
    return Stream(derive_seed(seed_, name));
  }
  [[nodiscard]] Stream child(std::uint64_t index) const {
    return Stream(derive_seed(seed_, index));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Materialize a generator at this node.
  [[nodiscard]] Rng rng() const { return Rng(seed_); }

 private:
  std::uint64_t seed_;
};

}  // namespace pet::sim
