#pragma once
// Deterministic iteration over unordered associative containers.
//
// Hash-map iteration order is an implementation detail (bucket layout,
// libstdc++ version, hash seed) and must never influence simulation
// behaviour or anything that feeds a run artifact or digest — the
// pet_lint `nondet-iteration` rule enforces this at the source level.
// When code needs to *visit* an unordered container in a way whose order
// is observable (bounded eviction, export, digesting), it iterates the
// sorted key view from here instead; the collection pass itself is
// order-insensitive because the keys are sorted before use.

#include <algorithm>
#include <type_traits>
#include <vector>

namespace pet::sim {

/// Keys of an unordered map/set in ascending order. O(n log n), allocates;
/// intended for cold paths (eviction, export), not per-packet work.
template <class Container>
[[nodiscard]] std::vector<typename Container::key_type> sorted_keys(
    const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(entry);  // set-like: the entry is the key
    } else {
      keys.push_back(entry.first);  // map-like
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace pet::sim
