#include "sim/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace pet::sim {

namespace {
// The logger's only mutable state: the level is an atomic read by every
// thread, and the replica id is per-thread by construction.
std::atomic<LogLevel> g_level{LogLevel::kOff};
thread_local std::int32_t t_replica_id PET_THREAD_CONFINED(owning_thread) =
    -1;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_replica_id(std::int32_t replica) { t_replica_id = replica; }
std::int32_t log_replica_id() { return t_replica_id; }

namespace detail {

void vlog(LogLevel level, Time now, const char* fmt, ...) {
  // Assemble the whole line first so concurrent writers emit whole lines;
  // a single fwrite to (unbuffered) stderr is atomic in practice.
  char prefix[96];
  int n;
  if (t_replica_id >= 0) {
    n = std::snprintf(prefix, sizeof prefix, "[%s r%d %12s] ",
                      level_tag(level), t_replica_id,
                      now.to_string().c_str());
  } else {
    n = std::snprintf(prefix, sizeof prefix, "[%s %12s] ", level_tag(level),
                      now.to_string().c_str());
  }
  if (n < 0) return;

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (body < 0) {
    va_end(args);
    return;
  }
  std::vector<char> line(static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(body) + 2);
  std::memcpy(line.data(), prefix, static_cast<std::size_t>(n));
  std::vsnprintf(line.data() + n, static_cast<std::size_t>(body) + 1, fmt,
                 args);
  va_end(args);
  line[line.size() - 2] = '\n';
  std::fwrite(line.data(), 1, line.size() - 1, stderr);
}

}  // namespace detail
}  // namespace pet::sim
