#include "sim/log.hpp"

#include <cstdarg>

namespace pet::sim {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void vlog(LogLevel level, Time now, const char* fmt, ...) {
  std::fprintf(stderr, "[%s %12s] ", level_tag(level), now.to_string().c_str());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace pet::sim
