#pragma once
// Discrete-event scheduler: the heart of the simulator.
//
// Single-threaded by design (determinism is a hard requirement for the RL
// experiments); ties in event time are broken by insertion order so two runs
// with the same seed replay the exact same event sequence.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pet::sim {

class Profiler;

/// Handle to a scheduled event; allows cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  /// `kind` is an optional string-literal tag (stable pointer identity)
  /// under which an attached Profiler attributes the event's execution;
  /// untagged events are pooled as "event".
  EventId schedule_at(Time at, Callback cb, const char* kind = nullptr);

  /// Schedule `cb` to run `delay` from now.
  EventId schedule_in(Time delay, Callback cb, const char* kind = nullptr) {
    return schedule_at(now_ + delay, std::move(cb), kind);
  }

  /// Cancel a pending event. Cancelling an already-run or already-cancelled
  /// event is a harmless no-op. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run events until the queue drains or `until` is reached (events at
  /// exactly `until` DO run; now() ends at `until` if reached).
  /// Returns the number of events executed.
  std::size_t run_until(Time until);

  /// Run all remaining events (use only in tests/bounded scenarios).
  std::size_t run_all() { return run_until(Time::max()); }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return pending_seqs_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attach a profiler: every executed event is counted and wall-timed
  /// under its kind tag, and the profiler's span clock follows now().
  /// Detach with nullptr. Profiling observes only — the event sequence is
  /// bit-identical with or without it.
  void set_profiler(Profiler* profiler);
  [[nodiscard]] Profiler* profiler() const { return profiler_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    const char* kind;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_seqs_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  Profiler* profiler_ = nullptr;
};

}  // namespace pet::sim
