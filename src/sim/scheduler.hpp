#pragma once
// Discrete-event scheduler: the heart of the simulator.
//
// Single-threaded by design (determinism is a hard requirement for the RL
// experiments); ties in event time are broken by insertion order so two runs
// with the same seed replay the exact same event sequence.
//
// Hot-path layout (see DESIGN.md "Hot path & bench gate"):
//   * events live in a chunked slot pool with per-slot generation counters;
//     an EventId is (generation, slot), so cancel() is one array index and a
//     tombstone-bit flip — no hashing, no per-event bookkeeping sets. Chunks
//     never move, so callbacks run in place straight out of their slot;
//   * the ready queue is a flat 4-ary min-heap over (time, sequence) keys.
//     The key order is total, so pop order — and therefore every golden
//     artifact — is bitwise independent of heap arity and layout;
//   * callbacks are sim::SmallCallback: capture storage is inline in the
//     pool record, so a warmed-up schedule/run steady state performs zero
//     heap allocations (pinned by tests/test_alloc_steady.cpp);
//   * tombstoned entries are compacted away once they outnumber the live
//     half of the heap, so schedule-then-cancel patterns (retransmit and
//     watchdog timers) run in bounded memory.

#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace pet::sim {

class Profiler;

/// Handle to a scheduled event; allows cancellation. Encodes the pool slot
/// plus its generation at schedule time, so stale handles (already run,
/// already cancelled, slot since reused) are recognized and ignored.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return token_ != 0; }

 private:
  friend class Scheduler;
  constexpr explicit EventId(std::uint64_t token) : token_(token) {}
  std::uint64_t token_ = 0;
};

class Scheduler {
 public:
  using Callback = SmallCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  /// `kind` is an optional string-literal tag under which an attached
  /// Profiler attributes the event's execution; untagged events are counted
  /// (but not wall-timed) under "event". Accepts any void() callable and
  /// constructs it directly into the slot pool (no intermediate Callback).
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_r_v<
                             void, std::decay_t<Fn>&>>>
  EventId schedule_at(Time at, Fn&& fn, const char* kind = nullptr) {
    assert(at >= now_ && "cannot schedule into the past");
    const std::uint32_t slot = acquire_slot();
    Record& rec = record(slot);
    if constexpr (std::is_same_v<std::decay_t<Fn>, Callback>) {
      assert(fn && "null event callback");
      rec.cb = std::forward<Fn>(fn);
    } else {
      rec.cb.emplace(std::forward<Fn>(fn));
    }
    rec.kind = kind;
    heap_push(HeapItem{at, next_seq_++, slot});
    ++live_;
    return EventId((static_cast<std::uint64_t>(rec.gen) << 32) |
                   (static_cast<std::uint64_t>(slot) + 1));
  }

  /// Schedule `fn` to run `delay` from now.
  template <typename Fn, typename = std::enable_if_t<std::is_invocable_r_v<
                             void, std::decay_t<Fn>&>>>
  EventId schedule_in(Time delay, Fn&& fn, const char* kind = nullptr) {
    return schedule_at(now_ + delay, std::forward<Fn>(fn), kind);
  }

  /// Cancel a pending event. Cancelling an already-run or already-cancelled
  /// event is a harmless no-op. Returns true if the event was still pending.
  /// O(1): flips the slot's tombstone bit and releases the captured
  /// callback immediately (timers that never fire hold no resources).
  bool cancel(EventId id);

  /// Run events until the queue drains or `until` is reached (events at
  /// exactly `until` DO run; now() ends at `until` if reached).
  /// Returns the number of events executed.
  std::size_t run_until(Time until);

  /// Run all remaining events (use only in tests/bounded scenarios).
  std::size_t run_all() { return run_until(Time::max()); }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // --- capacity observability (leak regression tests, bench reports) -------
  /// Heap entries, including not-yet-compacted tombstones.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  /// Pool slots ever created (high-water mark of concurrent events).
  [[nodiscard]] std::size_t pool_size() const { return pool_count_; }
  /// Cancelled entries still awaiting compaction or expiry.
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

  /// Attach a profiler: every executed event is counted under its kind tag,
  /// and tagged events are additionally wall-timed (untagged events skip
  /// the clock samples so micro-bench numbers stay undistorted); the
  /// profiler's span clock follows now(). Detach with nullptr. Profiling
  /// observes only — the event sequence is bit-identical with or without it.
  void set_profiler(Profiler* profiler);
  [[nodiscard]] Profiler* profiler() const { return profiler_; }

 private:
  /// Pool record: callback + tag live here (stable address — chunks never
  /// move — reused via the free list); the heap carries only the 24-byte
  /// ordering key.
  struct Record {
    Callback cb;
    const char* kind = nullptr;
    std::uint32_t gen = 0;
    bool cancelled = false;
    std::uint32_t next_free = kNilSlot;
  };

  struct HeapItem {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    [[nodiscard]] bool before(const HeapItem& other) const {
      if (at != other.at) return at < other.at;
      return seq < other.seq;
    }
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// 4-ary heap indexing: children of i are 4i+1..4i+4.
  static constexpr std::size_t kArity = 4;
  /// Compaction kicks in only past this many tombstones, so small schedulers
  /// never pay the rebuild.
  static constexpr std::size_t kCompactMinTombstones = 64;
  /// Pool chunking: 256 records per chunk. Growth allocates a fresh chunk
  /// and never relocates existing records, so in-flight callbacks and the
  /// free list survive any reentrant schedule_at.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return pool_[slot >> kChunkShift][slot & kChunkMask];
  }

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = record(slot).next_free;
      return slot;
    }
    const std::uint32_t slot = pool_count_++;
    if ((slot & kChunkMask) == 0) grow_pool();
    return slot;
  }

  void heap_push(HeapItem item) {
    // Hole insertion: bubble the hole up with single copies, then place the
    // item once (a swap chain would move three times per level).
    std::size_t i = heap_.size();
    heap_.push_back(item);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!item.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = item;
  }

  void grow_pool();
  void release_slot(std::uint32_t slot);
  void heap_pop_root();
  void sift_down(std::size_t i, HeapItem item);
  void compact_tombstones();

  std::vector<HeapItem> heap_;  // flat 4-ary min-heap by (at, seq)
  std::vector<std::unique_ptr<Record[]>> pool_;
  std::uint32_t pool_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  Profiler* profiler_ = nullptr;
};

}  // namespace pet::sim
