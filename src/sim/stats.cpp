#include "sim/stats.hpp"

#include <cassert>
#include <numeric>

namespace pet::sim {

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  assert(pct >= 0.0 && pct <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (pct <= 0.0) return samples.front();
  if (pct >= 100.0) return samples.back();
  // Nearest-rank: smallest value with cumulative share >= pct.
  const auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

}  // namespace pet::sim
