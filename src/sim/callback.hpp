#pragma once
// SmallCallback — the event core's type-erased `void()` callable.
//
// std::function heap-allocates once a capture outgrows its (typically 16-
// or 24-byte) small-buffer, and every host/switch transmit event captures a
// QueueEntry (~64 bytes with padding), so the old Scheduler paid one heap
// round trip per scheduled event. SmallCallback sizes its inline buffer for
// the captures the simulator actually schedules (device pointer + packet +
// bookkeeping) and only falls back to the heap beyond that, so the DES
// steady state performs zero allocations. Move-only, like the events it
// carries.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pet::sim {

class SmallCallback {
 public:
  /// Inline capture budget. Large enough for every hot-path event in the
  /// tree (EgressPort::finish_transmit captures this + QueueEntry = 72
  /// bytes; propagation captures peer + Packet + port = 64 bytes) with
  /// headroom; callables beyond it still work via a heap box, they are just
  /// not allocation-free (tests/test_callback.cpp pins both regimes).
  static constexpr std::size_t kInlineBytes = 88;

  constexpr SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                          // std::function at every schedule_at call site
    emplace(std::forward<F>(f));
  }

  /// Construct a callable in place (destroying any current one), skipping
  /// the intermediate SmallCallback a `cb = fn` assignment would build and
  /// then relocate — the scheduler's schedule fast path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &boxed_ops<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  /// Invoke then destroy in one type-erased call (the scheduler's run loop:
  /// every event fires exactly once, so invoke/destroy pay a single indirect
  /// call instead of two). Leaves the callback empty.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Drop the held callable (and free a heap box, if any).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the held callable lives in the inline buffer (test hook for
  /// the zero-allocation contract).
  [[nodiscard]] bool is_inline() const {
    return ops_ != nullptr && ops_->inline_storage;
  }

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    void (*invoke_destroy)(void* buf);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* buf);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* buf) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(buf));
        (*fn)();
        fn->~Fn();
      },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](void* buf) {
        Fn* fn = *reinterpret_cast<Fn**>(buf);
        (*fn)();
        delete fn;
      },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* buf) { delete *reinterpret_cast<Fn**>(buf); },
      /*inline_storage=*/false,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace pet::sim
