#pragma once
// Streaming and batch statistics used by monitors, recorders and benches.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/checkpoint.hpp"

namespace pet::sim {

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void save_state(ByteSink& out) const {
    out.u64(static_cast<std::uint64_t>(n_));
    out.f64(mean_);
    out.f64(m2_);
    out.f64(min_);
    out.f64(max_);
  }
  [[nodiscard]] bool load_state(ByteSource& in) {
    n_ = static_cast<std::size_t>(in.u64());
    mean_ = in.f64();
    m2_ = in.f64();
    min_ = in.f64();
    max_ = in.f64();
    return in.ok();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
/// Sample points carry the value that held *since the previous sample*.
class TimeWeightedStats {
 public:
  /// Record that `value` held for `duration` (any time unit, must be >= 0).
  void add(double value, double duration) {
    if (duration <= 0.0) return;
    total_time_ += duration;
    weighted_sum_ += value * duration;
    weighted_sq_sum_ += value * value * duration;
  }

  void reset() { *this = TimeWeightedStats{}; }

  [[nodiscard]] double total_time() const { return total_time_; }
  [[nodiscard]] double mean() const {
    return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
  }
  [[nodiscard]] double variance() const {
    if (total_time_ <= 0.0) return 0.0;
    const double m = mean();
    return std::max(0.0, weighted_sq_sum_ / total_time_ - m * m);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  double total_time_ = 0.0;
  double weighted_sum_ = 0.0;
  double weighted_sq_sum_ = 0.0;
};

/// Batch percentile over a sample vector (nearest-rank on a sorted copy).
[[nodiscard]] double percentile(std::vector<double> samples, double pct);

/// Mean of a sample vector (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& samples);

}  // namespace pet::sim
