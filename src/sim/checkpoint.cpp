#include "sim/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#include "sim/fs_atomic.hpp"
#include "sim/rng.hpp"

namespace pet::sim {

namespace {

constexpr std::array<char, 8> kMagic = {'P', 'E', 'T', 'C', 'K', 'P', 'T', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

// --- ByteSink ---------------------------------------------------------------

void ByteSink::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteSink::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteSink::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void ByteSink::i32_vec(const std::vector<std::int32_t>& v) {
  u64(v.size());
  for (std::int32_t x : v) i32(x);
}

// --- ByteSource -------------------------------------------------------------

std::uint8_t ByteSource::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint32_t ByteSource::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteSource::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteSource::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteSource::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::vector<double> ByteSource::f64_vec() {
  const std::uint64_t len = u64();
  // Validate the declared length against the remaining bytes before
  // reserving, so a corrupted length cannot trigger a giant allocation.
  if (fail_ || size_ - pos_ < len * 8) {
    fail_ = true;
    return {};
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) v.push_back(f64());
  return v;
}

std::vector<std::int32_t> ByteSource::i32_vec() {
  const std::uint64_t len = u64();
  if (fail_ || size_ - pos_ < len * 4) {
    fail_ = true;
    return {};
  }
  std::vector<std::int32_t> v;
  v.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) v.push_back(i32());
  return v;
}

// --- Checkpoint -------------------------------------------------------------

void Checkpoint::set_section(std::string name,
                             std::vector<std::uint8_t> payload) {
  for (auto& [existing, bytes] : sections_) {
    if (existing == name) {
      bytes = std::move(payload);
      return;
    }
  }
  sections_.emplace_back(std::move(name), std::move(payload));
}

const std::vector<std::uint8_t>* Checkpoint::section(
    std::string_view name) const {
  for (const auto& [existing, bytes] : sections_) {
    if (existing == name) return &bytes;
  }
  return nullptr;
}

std::vector<std::uint8_t> Checkpoint::serialize() const {
  ByteSink out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.str(name);
    out.u64(payload.size());
    out.u32(crc32(payload.data(), payload.size()));
    for (std::uint8_t b : payload) out.u8(b);
  }
  return out.take();
}

std::optional<Checkpoint> Checkpoint::deserialize(const std::uint8_t* data,
                                                  std::size_t size,
                                                  std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<Checkpoint> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (size < kMagic.size() ||
      std::memcmp(data, kMagic.data(), kMagic.size()) != 0) {
    return fail("bad magic (not a pet.ckpt/1 file)");
  }
  ByteSource in(data + kMagic.size(), size - kMagic.size());
  const std::uint32_t count = in.u32();
  Checkpoint ckpt;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = in.str();
    const std::uint64_t len = in.u64();
    const std::uint32_t expected_crc = in.u32();
    if (!in.ok()) return fail("truncated section header");
    std::vector<std::uint8_t> payload;
    payload.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t b = 0; b < len; ++b) payload.push_back(in.u8());
    if (!in.ok()) return fail("truncated section payload");
    if (crc32(payload.data(), payload.size()) != expected_crc) {
      if (error != nullptr) *error = "CRC mismatch in section " + name;
      return std::nullopt;
    }
    ckpt.set_section(std::move(name), std::move(payload));
  }
  if (!in.at_end()) return fail("trailing bytes after last section");
  return ckpt;
}

bool Checkpoint::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  return atomic_write_file(
      path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()));
}

std::optional<Checkpoint> Checkpoint::read_file(const std::string& path,
                                                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 4096> chunk{};
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(),
                 chunk.begin() + static_cast<std::ptrdiff_t>(got));
  }
  std::fclose(f);
  return deserialize(bytes.data(), bytes.size(), error);
}

void save_rng(ByteSink& out, const Rng& rng) {
  for (std::uint64_t word : rng.state()) out.u64(word);
}

bool load_rng(ByteSource& in, Rng& rng) {
  std::array<std::uint64_t, 4> state{};
  for (auto& word : state) word = in.u64();
  if (!in.ok()) return false;
  rng.set_state(state);
  return true;
}

}  // namespace pet::sim
