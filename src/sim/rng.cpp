#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace pet::sim {

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double mean) {
  // 1 - uniform() is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view stream_name) {
  // FNV-1a over the name, mixed with the parent through splitmix64.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : stream_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t state = parent ^ h;
  return splitmix64(state);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index) {
  // Offset the index so child(0) differs from the parent's own stream and
  // from child("") by construction, then mix through splitmix64.
  std::uint64_t state = parent ^ (index + 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

}  // namespace pet::sim
