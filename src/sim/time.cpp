#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace pet::sim {

std::string Time::to_string() const {
  char buf[64];
  const double v = static_cast<double>(ps_);
  if (std::llabs(ps_) >= 1'000'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.6fs", v * 1e-12);
  } else if (std::llabs(ps_) >= 1'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fms", v * 1e-9);
  } else if (std::llabs(ps_) >= 1'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fus", v * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fns", v * 1e-3);
  }
  return buf;
}

}  // namespace pet::sim
