#include "sim/scheduler.hpp"

#include <cassert>
#include <chrono>
#include <utility>

#include "sim/profiler.hpp"

namespace pet::sim {

EventId Scheduler::schedule_at(Time at, Callback cb, const char* kind) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(cb && "null event callback");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::move(cb), kind});
  pending_seqs_.insert(seq);
  return EventId(seq);
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Only a genuinely pending event may be cancelled; stale ids (already run
  // or already cancelled) are ignored so callers can cancel defensively.
  if (pending_seqs_.erase(id.seq_) == 0) return false;
  cancelled_.insert(id.seq_);
  return true;
}

void Scheduler::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    profiler_->set_time_source([this] { return now_.us(); });
  }
}

std::size_t Scheduler::run_until(Time until) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; the element is about to be popped, so
    // moving out of it is safe.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(entry.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_seqs_.erase(entry.seq);
    now_ = entry.at;
    ++executed_;
    ++ran;
    if (profiler_ != nullptr) {
      // pet-lint: allow(banned-api): wall-clock timing of the event body
      const auto t0 = std::chrono::steady_clock::now();
      entry.cb();
      // pet-lint: allow(banned-api): wall-clock timing of the event body
      const auto t1 = std::chrono::steady_clock::now();
      profiler_->record_event(
          entry.kind != nullptr ? entry.kind : "event",
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    } else {
      entry.cb();
    }
  }
  if (until != Time::max() && now_ < until) now_ = until;
  return ran;
}

}  // namespace pet::sim
