#include "sim/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "sim/profiler.hpp"

namespace pet::sim {

void Scheduler::grow_pool() {
  pool_.push_back(std::make_unique<Record[]>(kChunkSize));
}

void Scheduler::release_slot(std::uint32_t slot) {
  Record& rec = record(slot);
  rec.cb.reset();
  rec.kind = nullptr;
  ++rec.gen;  // invalidate every EventId issued for the previous occupant
  rec.next_free = free_head_;
  free_head_ = slot;
}

void Scheduler::sift_down(std::size_t i, HeapItem item) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void Scheduler::heap_pop_root() {
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  sift_down(0, last);
}

void Scheduler::compact_tombstones() {
  // Drop every tombstoned entry, free its slot, and re-heapify in place.
  // Pop order is a pure function of the (at, seq) total order, so the
  // rebuilt heap replays the exact same event sequence.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t slot = heap_[i].slot;
    if (record(slot).cancelled) {
      record(slot).cancelled = false;
      release_slot(slot);
    } else {
      heap_[kept++] = heap_[i];
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  if (kept <= 1) return;
  for (std::size_t start = (kept - 2) / kArity + 1; start-- > 0;) {
    sift_down(start, heap_[start]);
  }
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot =
      static_cast<std::uint32_t>((id.token_ & 0xffffffffu) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.token_ >> 32);
  // Only a genuinely pending event may be cancelled; stale ids (already run
  // or already cancelled — the slot's generation moved on) are ignored so
  // callers can cancel defensively.
  if (slot >= pool_count_) return false;
  Record& rec = record(slot);
  if (rec.gen != gen || rec.cancelled) return false;
  rec.cancelled = true;
  // Release the capture now: a cancelled retransmit/watchdog timer must not
  // pin its captured state until the (possibly far-future) deadline pops.
  rec.cb.reset();
  --live_;
  ++tombstones_;
  if (tombstones_ > kCompactMinTombstones && tombstones_ * 2 > heap_.size()) {
    compact_tombstones();
  }
  return true;
}

void Scheduler::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    profiler_->set_time_source([this] { return now_.us(); });
  }
}

std::size_t Scheduler::run_until(Time until) {
  std::size_t ran = 0;
  while (!heap_.empty() && heap_[0].at <= until) {
    const HeapItem item = heap_[0];
    heap_pop_root();
    Record& rec = record(item.slot);
    if (rec.cancelled) {
      rec.cancelled = false;
      release_slot(item.slot);
      --tombstones_;
      continue;
    }
    const char* kind = rec.kind;
    // Invalidate outstanding EventIds before invoking: the callback runs in
    // place out of its pool slot (chunks never move), so a self-cancel from
    // inside the body must already see a stale handle.
    ++rec.gen;
    --live_;
    now_ = item.at;
    ++executed_;
    ++ran;
    if (profiler_ != nullptr && kind != nullptr) {
      // pet-lint: allow(banned-api): wall-clock timing of the event body
      const auto t0 = std::chrono::steady_clock::now();
      rec.cb.consume();
      // pet-lint: allow(banned-api): wall-clock timing of the event body
      const auto t1 = std::chrono::steady_clock::now();
      profiler_->record_event(
          kind, std::chrono::duration<double, std::milli>(t1 - t0).count());
    } else {
      rec.cb.consume();
      // Untagged events are counted but not wall-timed: two steady_clock
      // samples per event would distort the numbers the profiler exists to
      // report (and the micro benches gate on).
      if (profiler_ != nullptr) profiler_->count_untagged_event();
    }
    // The body may have scheduled (into other slots — this one is not on the
    // free list yet) or cancelled (compacting the heap); both leave rec's
    // address intact. Free the slot without a second generation bump.
    rec.kind = nullptr;
    rec.next_free = free_head_;
    free_head_ = item.slot;
  }
  if (until != Time::max() && now_ < until) now_ = until;
  return ran;
}

}  // namespace pet::sim
