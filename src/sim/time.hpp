#pragma once
// Simulation time: a strong 64-bit picosecond tick type.
//
// Picosecond resolution keeps serialization times of single bytes exact at
// 100 Gbps (80 ps/byte) while still covering ~106 days of simulated time in
// int64_t, far beyond any scenario in this library.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace pet::sim {

/// A point in (or duration of) simulated time, in picoseconds.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  [[nodiscard]] static constexpr Time zero() { return Time(0); }
  [[nodiscard]] static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) { ps_ += rhs.ps_; return *this; }
  constexpr Time& operator-=(Time rhs) { ps_ -= rhs.ps_; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ps_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time(a.ps_ * k); }
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ps_ / b.ps_; }

  /// Human-readable rendering with an auto-selected unit (for logs).
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

[[nodiscard]] constexpr Time picoseconds(std::int64_t v) { return Time(v); }
[[nodiscard]] constexpr Time nanoseconds(std::int64_t v) { return Time(v * 1'000); }
[[nodiscard]] constexpr Time microseconds(std::int64_t v) { return Time(v * 1'000'000); }
[[nodiscard]] constexpr Time milliseconds(std::int64_t v) { return Time(v * 1'000'000'000); }
[[nodiscard]] constexpr Time seconds(double v) {
  return Time(static_cast<std::int64_t>(v * 1e12));
}

/// Link/port bandwidth in bits per second, with exact serialization-time math.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(std::int64_t bits_per_second) : bps_(bits_per_second) {}

  [[nodiscard]] constexpr std::int64_t bps() const { return bps_; }
  [[nodiscard]] constexpr double gbps() const { return static_cast<double>(bps_) * 1e-9; }

  /// Time to serialize `bytes` onto a link of this rate.
  [[nodiscard]] constexpr Time serialization_time(std::int64_t bytes) const {
    // bytes*8e12 fits int64 for bytes < ~1.1e6; jumbo frames are far below.
    return Time(bytes * 8'000'000'000'000LL / bps_);
  }

  /// Bytes transmittable in `t` at this rate.
  [[nodiscard]] constexpr std::int64_t bytes_in(Time t) const {
    return static_cast<std::int64_t>(
        static_cast<double>(t.ps()) * 1e-12 * static_cast<double>(bps_) / 8.0);
  }

  constexpr auto operator<=>(const Rate&) const = default;

 private:
  std::int64_t bps_ = 0;
};

[[nodiscard]] constexpr Rate bits_per_second(std::int64_t v) { return Rate(v); }
[[nodiscard]] constexpr Rate mbps(std::int64_t v) { return Rate(v * 1'000'000); }
[[nodiscard]] constexpr Rate gbps(std::int64_t v) { return Rate(v * 1'000'000'000); }

}  // namespace pet::sim
