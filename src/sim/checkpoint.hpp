#pragma once
// Versioned binary checkpoint container — schema `pet.ckpt/1`.
//
// A checkpoint is an ordered list of named sections, each an opaque byte
// payload produced by some component's `save_state`. On disk:
//
//   magic "PETCKPT1" (8 bytes)
//   u32   section count
//   per section:
//     u32  name length, name bytes
//     u64  payload length
//     u32  CRC-32 of payload
//     payload bytes
//
// All integers are little-endian regardless of host order. Readers validate
// the magic, every length against the remaining file size, and every CRC
// before a payload reaches a component's `load_state`, so a truncated or
// bit-flipped file fails loudly instead of resuming from garbage. Files are
// written through `atomic_write_file`, so a crash mid-save leaves the
// previous checkpoint intact.
//
// ByteSink/ByteSource are the section codec: explicit fixed-width fields,
// no padding, no host-endianness leakage. ByteSource is value-returning
// with a sticky fail flag — callers decode unconditionally and check
// `ok()` once at the end (plus any semantic validation of the values).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pet::sim {

class Rng;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Little-endian binary encoder for checkpoint section payloads.
class ByteSink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bit pattern as u64
  void str(std::string_view s);
  void f64_vec(const std::vector<double>& v);
  void i32_vec(const std::vector<std::int32_t>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. Any read past the end (including
/// a corrupted vector length) sets a sticky fail flag and yields zeros /
/// empties from then on; callers check `ok()` after decoding.
class ByteSource {
 public:
  ByteSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteSource(const std::vector<std::uint8_t>& bytes)
      : ByteSource(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<std::int32_t> i32_vec();

  /// True while every read so far was in bounds.
  [[nodiscard]] bool ok() const { return !fail_; }
  /// True when the payload was consumed exactly (no trailing bytes).
  [[nodiscard]] bool at_end() const { return !fail_ && pos_ == size_; }

 private:
  [[nodiscard]] bool take(std::size_t n) {
    if (fail_ || size_ - pos_ < n) {
      fail_ = true;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

/// Ordered named-section container for `pet.ckpt/1` files.
class Checkpoint {
 public:
  static constexpr std::string_view kSchema = "pet.ckpt/1";

  /// Add or replace a section (insertion order preserved on disk).
  void set_section(std::string name, std::vector<std::uint8_t> payload);
  /// Payload lookup; nullptr when the section is absent.
  [[nodiscard]] const std::vector<std::uint8_t>* section(
      std::string_view name) const;
  [[nodiscard]] const std::vector<
      std::pair<std::string, std::vector<std::uint8_t>>>&
  sections() const {
    return sections_;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<Checkpoint> deserialize(
      const std::uint8_t* data, std::size_t size, std::string* error = nullptr);

  /// Atomic (tmp + fsync + rename) durable save.
  [[nodiscard]] bool write_file(const std::string& path) const;
  [[nodiscard]] static std::optional<Checkpoint> read_file(
      const std::string& path, std::string* error = nullptr);

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// Serialize / restore an Rng stream position (4 xoshiro words).
void save_rng(ByteSink& out, const Rng& rng);
[[nodiscard]] bool load_rng(ByteSource& in, Rng& rng);

}  // namespace pet::sim
