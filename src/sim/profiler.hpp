#pragma once
// sim::Profiler — cheap run-time instrumentation for the simulator.
//
// Two kinds of data are collected:
//   * sections: per-event-kind call counters + wall-clock totals. The
//     Scheduler feeds these automatically once attached (set_profiler);
//     event kinds are the `const char*` tags passed at schedule time.
//   * spans: explicit phase scopes (PET_PROFILE_SCOPE) carrying both a
//     wall-clock duration and a simulated-time interval, so a phase like
//     "pretrain" can be attributed in a report *and* replayed on a
//     chrome://tracing timeline (sim-time spans are deterministic; wall
//     times are not and stay out of trace exports).
//
// Not thread-safe: one Profiler belongs to one simulation stack (each
// replica of a parallel run owns its own), exactly like the Scheduler it
// observes. Detached (nullptr) profilers cost a branch per use.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pet::sim {

class Profiler {
 public:
  struct Section {
    std::string name;
    std::uint64_t calls = 0;
    double wall_ms = 0.0;
  };
  /// A closed phase scope. t0/t1 are simulated microseconds (0 when no
  /// time source is attached); wall_ms is host time spent inside.
  struct Span {
    std::string name;
    double t0_us = 0.0;
    double t1_us = 0.0;
    double wall_ms = 0.0;
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Simulated-time source for spans (the Scheduler attaches itself when
  /// set_profiler is called; standalone users may supply their own).
  // pet-lint: allow(hot-path-alloc): time source is installed once at
  // attach time, never on the per-event path
  void set_time_source(std::function<double()> now_us) {
    now_us_ = std::move(now_us);
  }

  /// Bump a named counter without timing.
  void count(std::string_view name, std::uint64_t n = 1);

  /// Credit `wall_ms` of host time (and one call) to a named section.
  void add_time(std::string_view name, double wall_ms);

  /// Scheduler fast path: `kind` is a string literal whose pointer identity
  /// is stable for the process lifetime, so repeat events resolve without
  /// hashing the characters. String-literal merging across translation
  /// units is NOT guaranteed by the language, so identical tags from
  /// different TUs may arrive under distinct pointers — each pointer gets
  /// its own internal row here, and sections()/section()/report() merge
  /// rows by content, so readers always see one section per tag.
  void record_event(const char* kind, double wall_ms);

  /// Scheduler fast path for events scheduled without a kind tag: bumps the
  /// "event" pool's call count with no clock access and no hashing (a
  /// cached index after the first call).
  void count_untagged_event();

  /// RAII phase scope; tolerates a null profiler so instrumented code
  /// needs no `if (profiler)` at every site.
  class Scope {
   public:
    Scope(Profiler* profiler, const char* name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_;
    const char* name_;
    // pet-lint: allow(banned-api): wall-clock profiling only — the value
    // lands in wall_ms fields, which golden canonicalization strips
    std::chrono::steady_clock::time_point wall_start_{};
    double t0_us_ = 0.0;
  };

  /// Report-time view: rows merged by section name (calls and wall time
  /// summed), in first-appearance order. The reference stays valid until
  /// the next recording call.
  [[nodiscard]] const std::vector<Section>& sections() const;
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  /// Merged section by name (nullptr if never recorded). The pointer stays
  /// valid until the next recording call.
  [[nodiscard]] const Section* section(std::string_view name) const;

  /// Human-readable table of sections (sorted by wall time, descending).
  [[nodiscard]] std::string report() const;

  void clear();

 private:
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  std::size_t index_of(std::string_view name);

  // Raw rows: one per named counter plus one per distinct kind pointer —
  // duplicates by content are possible and merged lazily on read.
  std::vector<Section> sections_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<const void*, std::size_t> by_pointer_;
  std::size_t untagged_idx_ = kNoIndex;
  mutable std::vector<Section> merged_;
  mutable bool merged_dirty_ = false;
  std::vector<Span> spans_;
  // pet-lint: allow(hot-path-alloc): cold member — written once at setup
  std::function<double()> now_us_;
};

}  // namespace pet::sim

// Unique-name plumbing so two scopes can share a block.
#define PET_PROFILE_CONCAT_INNER(a, b) a##b
#define PET_PROFILE_CONCAT(a, b) PET_PROFILE_CONCAT_INNER(a, b)

/// Times the rest of the enclosing block under `name`. `profiler` is a
/// `sim::Profiler*` and may be null (the scope is then a no-op).
#define PET_PROFILE_SCOPE(profiler, name)                 \
  ::pet::sim::Profiler::Scope PET_PROFILE_CONCAT(         \
      pet_profile_scope_, __LINE__)((profiler), (name))
