#pragma once
// Crash-safe file writes.
//
// Every artifact the repo treats as a completion marker (run artifacts,
// goldens, checkpoints, weight caches, CSV telemetry) must become visible
// atomically: a crash mid-write must leave either the old file or no file,
// never a truncated one that poisons golden gates or resume detection.
// `atomic_write_file` writes `<path>.tmp`, flushes it to disk (fsync), and
// renames it over the target — rename(2) is atomic on POSIX filesystems.

#include <string>
#include <string_view>

namespace pet::sim {

/// Durably replace `path` with `contents`. Returns false (and removes the
/// temporary) on any I/O failure; the previous file, if any, is untouched.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     std::string_view contents);

}  // namespace pet::sim
