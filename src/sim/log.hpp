#pragma once
// Minimal leveled logging for the simulator. Off by default so benches and
// tests stay quiet; scenario drivers can raise the level for debugging.
//
// Thread-safe: the level is a process-wide atomic, and each log line is
// assembled in full before a single write(2)-sized fwrite to stderr, so
// lines from concurrent ReplicaRunner workers never interleave mid-line.
// Worker threads may tag their lines with a replica id
// (set_log_replica_id) rendered as "r<N>" next to the level.

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace pet::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log level (atomic; safe to read from any thread).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Tag this thread's log lines with a replica id (negative clears the
/// tag). Thread-local: a ReplicaRunner worker sets it around each replica
/// simulation so interleaved worker output stays attributable.
void set_log_replica_id(std::int32_t replica);
[[nodiscard]] std::int32_t log_replica_id();

namespace detail {
void vlog(LogLevel level, Time now, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
}  // namespace detail

}  // namespace pet::sim

// Macros keep the (cheap) level check at the call site and preserve
// printf-format diagnostics from the compiler.
#define PET_LOG(level, scheduler, ...)                                      \
  do {                                                                      \
    if (::pet::sim::log_level() >= (level)) {                               \
      ::pet::sim::detail::vlog((level), (scheduler).now(), __VA_ARGS__);    \
    }                                                                       \
  } while (0)

#define PET_LOG_ERROR(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kError, (scheduler), __VA_ARGS__)
#define PET_LOG_WARN(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kWarn, (scheduler), __VA_ARGS__)
#define PET_LOG_INFO(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kInfo, (scheduler), __VA_ARGS__)
#define PET_LOG_DEBUG(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kDebug, (scheduler), __VA_ARGS__)
#define PET_LOG_TRACE(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kTrace, (scheduler), __VA_ARGS__)
