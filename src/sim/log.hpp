#pragma once
// Minimal leveled logging for the simulator. Off by default so benches and
// tests stay quiet; scenario drivers can raise the level for debugging.

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace pet::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log level (single-threaded simulator; no synchronization).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, Time now, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
}  // namespace detail

}  // namespace pet::sim

// Macros keep the (cheap) level check at the call site and preserve
// printf-format diagnostics from the compiler.
#define PET_LOG(level, scheduler, ...)                                      \
  do {                                                                      \
    if (::pet::sim::log_level() >= (level)) {                               \
      ::pet::sim::detail::vlog((level), (scheduler).now(), __VA_ARGS__);    \
    }                                                                       \
  } while (0)

#define PET_LOG_ERROR(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kError, (scheduler), __VA_ARGS__)
#define PET_LOG_WARN(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kWarn, (scheduler), __VA_ARGS__)
#define PET_LOG_INFO(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kInfo, (scheduler), __VA_ARGS__)
#define PET_LOG_DEBUG(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kDebug, (scheduler), __VA_ARGS__)
#define PET_LOG_TRACE(scheduler, ...) \
  PET_LOG(::pet::sim::LogLevel::kTrace, (scheduler), __VA_ARGS__)
