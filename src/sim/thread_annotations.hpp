#pragma once
// Lightweight thread-safety annotations, checked statically by pet_lint's
// lock-discipline rule (tools/pet_lint/project_rules.cpp) the way Clang's
// -Wthread-safety-analysis checks its capability attributes. The macros
// compile to nothing — they are machine-checked documentation, not runtime
// behaviour — so they are safe on every toolchain.
//
//   PET_GUARDED_BY(mu)       field: may only be read or written while a
//                            lock_guard/scoped_lock/unique_lock on `mu` is
//                            in scope (constructors/destructors exempt)
//   PET_REQUIRES(mu)         function: the caller already holds `mu` for
//                            the whole body
//   PET_THREAD_CONFINED(who) field: touched by exactly one thread (`who`
//                            names it, e.g. coordinator); never shared
//   PET_READ_SHARED          field: written only while single-threaded
//                            (setup, or between worker pools); workers may
//                            read it concurrently but never write
//
// In a TU that spawns threads, every mutable field of a class that owns a
// sync primitive (mutex/atomic/condition_variable/...) must carry one of
// these — pet_lint flags unannotated fields so the discipline stays
// complete as code grows. Fields that are themselves sync primitives, and
// const/constexpr fields, need no annotation.

#define PET_GUARDED_BY(mu)
#define PET_REQUIRES(mu)
#define PET_THREAD_CONFINED(who)
#define PET_READ_SHARED
