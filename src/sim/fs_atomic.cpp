#include "sim/fs_atomic.hpp"

#include <cstdio>

#include <unistd.h>

namespace pet::sim {

bool atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  // Flush user-space buffers, then force the data to stable storage before
  // the rename makes it visible — otherwise a power loss could expose a
  // renamed-but-empty file, which is exactly what this helper exists to
  // prevent.
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

}  // namespace pet::sim
