#include "sim/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace pet::sim {

std::size_t Profiler::index_of(std::string_view name) {
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    return it->second;
  }
  const std::size_t idx = sections_.size();
  sections_.push_back(Section{std::string(name), 0, 0.0});
  by_name_.emplace(sections_.back().name, idx);
  return idx;
}

void Profiler::count(std::string_view name, std::uint64_t n) {
  sections_[index_of(name)].calls += n;
  merged_dirty_ = true;
}

void Profiler::add_time(std::string_view name, double wall_ms) {
  Section& s = sections_[index_of(name)];
  ++s.calls;
  s.wall_ms += wall_ms;
  merged_dirty_ = true;
}

void Profiler::record_event(const char* kind, double wall_ms) {
  // Pure pointer-identity fast path: a previously unseen pointer opens its
  // own row even when another TU's identical literal already has one (the
  // language does not guarantee cross-TU literal merging) — readers merge
  // rows by content, so the split is invisible outside this class.
  auto it = by_pointer_.find(kind);
  if (it == by_pointer_.end()) {
    const std::size_t idx = sections_.size();
    sections_.push_back(Section{std::string(kind), 0, 0.0});
    it = by_pointer_.emplace(kind, idx).first;
  }
  Section& s = sections_[it->second];
  ++s.calls;
  s.wall_ms += wall_ms;
  merged_dirty_ = true;
}

void Profiler::count_untagged_event() {
  if (untagged_idx_ == kNoIndex) untagged_idx_ = index_of("event");
  ++sections_[untagged_idx_].calls;
  merged_dirty_ = true;
}

const std::vector<Profiler::Section>& Profiler::sections() const {
  if (merged_dirty_) {
    merged_.clear();
    for (const Section& s : sections_) {
      auto it = std::find_if(
          merged_.begin(), merged_.end(),
          [&](const Section& m) { return m.name == s.name; });
      if (it == merged_.end()) {
        merged_.push_back(s);
      } else {
        it->calls += s.calls;
        it->wall_ms += s.wall_ms;
      }
    }
    merged_dirty_ = false;
  }
  return merged_;
}

const Profiler::Section* Profiler::section(std::string_view name) const {
  for (const Section& s : sections()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Profiler::report() const {
  const std::vector<Section>& merged = sections();
  std::vector<const Section*> by_time;
  by_time.reserve(merged.size());
  for (const Section& s : merged) by_time.push_back(&s);
  std::sort(by_time.begin(), by_time.end(), [](const auto* a, const auto* b) {
    return a->wall_ms > b->wall_ms;
  });
  std::string out = "section                          calls      wall ms\n";
  char line[128];
  for (const Section* s : by_time) {
    std::snprintf(line, sizeof line, "%-28s %10llu %12.3f\n", s->name.c_str(),
                  static_cast<unsigned long long>(s->calls), s->wall_ms);
    out += line;
  }
  for (const Span& sp : spans_) {
    std::snprintf(line, sizeof line,
                  "phase %-22s sim [%.1f, %.1f] us, wall %.3f ms\n",
                  sp.name.c_str(), sp.t0_us, sp.t1_us, sp.wall_ms);
    out += line;
  }
  return out;
}

void Profiler::clear() {
  sections_.clear();
  by_name_.clear();
  by_pointer_.clear();
  untagged_idx_ = kNoIndex;
  merged_.clear();
  merged_dirty_ = false;
  spans_.clear();
}

Profiler::Scope::Scope(Profiler* profiler, const char* name)
    : profiler_(profiler), name_(name) {
  if (profiler_ == nullptr) return;
  // pet-lint: allow(banned-api): wall-clock profiling — observability only
  wall_start_ = std::chrono::steady_clock::now();
  if (profiler_->now_us_) t0_us_ = profiler_->now_us_();
}

Profiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  // pet-lint: allow(banned-api): wall-clock profiling — observability only
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start_).count();
  Span span;
  span.name = name_;
  span.t0_us = t0_us_;
  span.t1_us = profiler_->now_us_ ? profiler_->now_us_() : t0_us_;
  span.wall_ms = wall_ms;
  profiler_->spans_.push_back(std::move(span));
  profiler_->add_time(name_, wall_ms);
}

}  // namespace pet::sim
