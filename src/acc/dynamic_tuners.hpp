#pragma once
// Dynamic (rule-based) ECN tuning baselines from the paper's related work
// (Section 2.2). These are the non-learning comparators the learning
// schemes claim to supersede:
//
//  * AmtTuner — in the spirit of AMT (Zhang et al. 2016): the threshold
//    follows periodically measured link utilization (high utilization =>
//    higher threshold to protect throughput, low => aggressive marking
//    for low delay).
//  * QaecnTuner — in the spirit of QAECN (Kang et al. 2019): an integral
//    controller on the instantaneous queue length steers the threshold
//    toward a target occupancy.
//
// Both run per switch on a fixed period with hand-set rules — exactly the
// "manually pre-defined adjustment policies" limitation the paper
// describes.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "net/switch.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace pet::baselines {

struct AmtConfig {
  sim::Time period = sim::microseconds(100);
  std::int64_t kmax_floor_bytes = 40 * 1024;
  std::int64_t kmax_ceiling_bytes = 400 * 1024;
  double pmax = 0.2;
  /// Kmin as a fraction of Kmax.
  double kmin_fraction = 0.25;
  /// EWMA gain for the utilization estimate.
  double util_gain = 0.3;
};

class AmtTuner {
 public:
  AmtTuner(sim::Scheduler& sched, std::span<net::SwitchDevice* const> switches,
           const AmtConfig& cfg);

  void start();
  void stop();

  /// Current smoothed utilization of a switch's bottleneck port.
  [[nodiscard]] double utilization(std::size_t i) const { return util_[i]; }
  [[nodiscard]] std::int64_t adjustments() const { return adjustments_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  AmtConfig cfg_;
  std::vector<net::SwitchDevice*> switches_;
  std::vector<double> util_;
  std::vector<std::vector<std::int64_t>> last_tx_;
  sim::Time last_tick_;
  sim::EventId ev_;
  bool running_ = false;
  std::int64_t adjustments_ = 0;
};

struct QaecnConfig {
  sim::Time period = sim::microseconds(100);
  std::int64_t target_qlen_bytes = 30 * 1024;
  std::int64_t kmax_floor_bytes = 20 * 1024;
  std::int64_t kmax_ceiling_bytes = 640 * 1024;
  double pmax = 0.2;
  double kmin_fraction = 0.25;
  /// Integral gain: bytes of threshold change per byte of queue error.
  double gain = 0.5;
};

class QaecnTuner {
 public:
  QaecnTuner(sim::Scheduler& sched,
             std::span<net::SwitchDevice* const> switches,
             const QaecnConfig& cfg);

  void start();
  void stop();

  [[nodiscard]] std::int64_t current_kmax(std::size_t i) const {
    return kmax_[i];
  }
  [[nodiscard]] std::int64_t adjustments() const { return adjustments_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  QaecnConfig cfg_;
  std::vector<net::SwitchDevice*> switches_;
  std::vector<std::int64_t> kmax_;
  sim::EventId ev_;
  bool running_ = false;
  std::int64_t adjustments_ = 0;
};

}  // namespace pet::baselines
