#pragma once
// ACC baseline (Yan et al., SIGCOMM'21) as the paper characterizes it:
// per-switch DDQN agents over the *basic* state set (queue length, output
// rates, current ECN config — no incast degree, no mice/elephant ratio)
// trained from a global experience replay shared by all switches.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/action.hpp"
#include "core/ncm.hpp"
#include "core/reward.hpp"
#include "core/state.hpp"
#include "net/network.hpp"
#include "net/red_ecn.hpp"
#include "net/switch.hpp"
#include "rl/ddqn.hpp"
#include "rl/replay.hpp"
#include "sim/checkpoint.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace pet::acc {

struct AccAgentConfig {
  core::StateConfig state{.include_incast = false, .include_flow_ratio = false};
  core::ActionSpace action_space{};
  core::RewardConfig reward{};
  core::NcmConfig ncm{};
  rl::DdqnConfig ddqn{};  // input_size/head_sizes derived automatically
  sim::Time tuning_interval = sim::microseconds(100);
  std::int32_t train_every = 1;  // gradient steps per tick
  bool training = true;
};

class AccAgent {
 public:
  AccAgent(sim::Scheduler& sched, net::SwitchDevice& sw,
           const AccAgentConfig& cfg, std::uint64_t seed,
           std::shared_ptr<rl::ReplayBuffer> global_replay);

  void tick();

  void set_training(bool training) { cfg_.training = training; }
  [[nodiscard]] rl::DdqnAgent& learner() { return *learner_; }
  [[nodiscard]] core::Ncm& ncm() { return ncm_; }
  [[nodiscard]] std::int64_t steps() const { return steps_; }
  [[nodiscard]] const sim::RunningStats& reward_stats() const {
    return reward_stats_;
  }
  [[nodiscard]] const net::RedEcnConfig& current_config() const {
    return current_config_;
  }

  // --- checkpointing (pet.ckpt/1 section payloads) --------------------------
  /// Learner + monitoring state. The shared global replay is checkpointed
  /// once by the controller, not per agent.
  void save_state(sim::ByteSink& out) const;
  /// Restores a save_state payload; false on a corrupted payload or
  /// architecture mismatch.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  sim::Scheduler& sched_;
  net::SwitchDevice& sw_;
  AccAgentConfig cfg_;
  core::Ncm ncm_;
  core::StateBuilder state_builder_;
  std::unique_ptr<rl::DdqnAgent> learner_;
  sim::Rng rng_;

  struct Pending {
    std::vector<double> state;
    std::vector<std::int32_t> actions;
  };
  std::optional<Pending> pending_;
  net::RedEcnConfig current_config_;
  std::int64_t steps_ = 0;
  sim::RunningStats reward_stats_;
};

struct AccControllerConfig {
  AccAgentConfig agent{};
  std::size_t replay_capacity = 20'000;  // the shared global replay
  sim::Time start_delay = sim::Time::zero();
};

/// Deploys ACC on every switch with the shared (global) replay the paper
/// criticizes; exposes the replay's memory/bandwidth cost so the overhead
/// experiment can quantify it.
class AccController {
 public:
  AccController(sim::Scheduler& sched,
                std::span<net::SwitchDevice* const> switches,
                const AccControllerConfig& cfg, std::uint64_t seed);

  void start();
  void stop();
  void set_training(bool training);

  [[nodiscard]] std::size_t num_agents() const { return agents_.size(); }
  [[nodiscard]] AccAgent& agent(std::size_t i) { return *agents_[i]; }
  [[nodiscard]] rl::ReplayBuffer& global_replay() { return *replay_; }

  [[nodiscard]] double mean_reward() const;

  /// Bytes each switch would need to exchange to maintain the global
  /// replay: experience it fetched that other switches produced.
  [[nodiscard]] std::size_t replay_exchange_bytes() const;

  /// Install one weight vector into every agent (offline pre-training).
  /// Returns false on a parameter-count mismatch (models left untouched).
  [[nodiscard]] bool install_weights(std::span<const double> weights);

  // --- checkpointing --------------------------------------------------------
  /// Shared replay once, then every agent's learner/monitor state.
  void save_state(sim::ByteSink& out) const;
  /// Restores a save_state payload; false on agent-count, replay-capacity,
  /// or architecture mismatch.
  [[nodiscard]] bool load_state(sim::ByteSource& in);

 private:
  void tick_all();

  sim::Scheduler& sched_;
  AccControllerConfig cfg_;
  std::shared_ptr<rl::ReplayBuffer> replay_;
  std::vector<std::unique_ptr<AccAgent>> agents_;
  sim::EventId next_tick_;
  bool running_ = false;
};

}  // namespace pet::acc
