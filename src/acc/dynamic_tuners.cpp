#include "acc/dynamic_tuners.hpp"

#include <algorithm>

namespace pet::baselines {

// ---------------------------------------------------------------------------
// AmtTuner
// ---------------------------------------------------------------------------

AmtTuner::AmtTuner(sim::Scheduler& sched,
                   std::span<net::SwitchDevice* const> switches,
                   const AmtConfig& cfg)
    : sched_(sched),
      cfg_(cfg),
      switches_(switches.begin(), switches.end()),
      util_(switches.size(), 0.0),
      last_tick_(sched.now()) {
  last_tx_.reserve(switches_.size());
  for (auto* sw : switches_) {
    std::vector<std::int64_t> base;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      base.push_back(sw->port(p).tx_bytes());
    }
    last_tx_.push_back(std::move(base));
  }
}

void AmtTuner::start() {
  if (running_) return;
  running_ = true;
  last_tick_ = sched_.now();
  ev_ = sched_.schedule_in(cfg_.period, [this] { tick(); }, "rl.tuner-tick");
}

void AmtTuner::stop() {
  running_ = false;
  if (ev_.valid()) {
    sched_.cancel(ev_);
    ev_ = sim::EventId{};
  }
}

void AmtTuner::tick() {
  if (!running_) return;
  const sim::Time now = sched_.now();
  const double window_sec = std::max(1e-12, (now - last_tick_).sec());
  last_tick_ = now;

  for (std::size_t i = 0; i < switches_.size(); ++i) {
    net::SwitchDevice* sw = switches_[i];
    double max_util = 0.0;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      const auto& port = sw->port(p);
      const double cap =
          static_cast<double>(port.rate().bps()) / 8.0 * window_sec;
      const double tx = static_cast<double>(port.tx_bytes() - last_tx_[i][p]);
      last_tx_[i][p] = port.tx_bytes();
      if (cap > 0.0) max_util = std::max(max_util, tx / cap);
    }
    util_[i] = (1.0 - cfg_.util_gain) * util_[i] +
               cfg_.util_gain * std::min(1.0, max_util);

    // Threshold follows utilization: busy links get headroom, idle links
    // get aggressive marking. Quadratic response keeps light load snappy.
    const double span = static_cast<double>(cfg_.kmax_ceiling_bytes -
                                            cfg_.kmax_floor_bytes);
    const auto kmax = static_cast<std::int64_t>(
        static_cast<double>(cfg_.kmax_floor_bytes) +
        span * util_[i] * util_[i]);
    const auto kmin = static_cast<std::int64_t>(
        static_cast<double>(kmax) * cfg_.kmin_fraction);
    sw->install_ecn(
        {.kmin_bytes = kmin, .kmax_bytes = kmax, .pmax = cfg_.pmax});
    ++adjustments_;
  }
  ev_ = sched_.schedule_in(cfg_.period, [this] { tick(); }, "rl.tuner-tick");
}

// ---------------------------------------------------------------------------
// QaecnTuner
// ---------------------------------------------------------------------------

QaecnTuner::QaecnTuner(sim::Scheduler& sched,
                       std::span<net::SwitchDevice* const> switches,
                       const QaecnConfig& cfg)
    : sched_(sched),
      cfg_(cfg),
      switches_(switches.begin(), switches.end()),
      kmax_(switches.size(), (cfg.kmax_floor_bytes + cfg.kmax_ceiling_bytes) / 2) {}

void QaecnTuner::start() {
  if (running_) return;
  running_ = true;
  ev_ = sched_.schedule_in(cfg_.period, [this] { tick(); }, "rl.tuner-tick");
}

void QaecnTuner::stop() {
  running_ = false;
  if (ev_.valid()) {
    sched_.cancel(ev_);
    ev_ = sim::EventId{};
  }
}

void QaecnTuner::tick() {
  if (!running_) return;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    net::SwitchDevice* sw = switches_[i];
    std::int64_t max_qlen = 0;
    for (std::int32_t p = 0; p < sw->num_ports(); ++p) {
      max_qlen = std::max(max_qlen, sw->port(p).total_queue_bytes());
    }
    // Queue above target -> mark earlier (lower threshold); below ->
    // relax it. Integral control with clamping.
    const double error = static_cast<double>(max_qlen - cfg_.target_qlen_bytes);
    kmax_[i] = std::clamp(
        kmax_[i] - static_cast<std::int64_t>(cfg_.gain * error),
        cfg_.kmax_floor_bytes, cfg_.kmax_ceiling_bytes);
    const auto kmin = static_cast<std::int64_t>(
        static_cast<double>(kmax_[i]) * cfg_.kmin_fraction);
    sw->install_ecn(
        {.kmin_bytes = kmin, .kmax_bytes = kmax_[i], .pmax = cfg_.pmax});
    ++adjustments_;
  }
  ev_ = sched_.schedule_in(cfg_.period, [this] { tick(); }, "rl.tuner-tick");
}

}  // namespace pet::baselines
