#include "acc/acc_agent.hpp"

#include <cassert>
#include <utility>

namespace pet::acc {

AccAgent::AccAgent(sim::Scheduler& sched, net::SwitchDevice& sw,
                   const AccAgentConfig& cfg, std::uint64_t seed,
                   std::shared_ptr<rl::ReplayBuffer> global_replay)
    : sched_(sched),
      sw_(sw),
      cfg_(cfg),
      ncm_(sched, sw, cfg.ncm),
      state_builder_(cfg.state, cfg.action_space),
      rng_(sim::derive_seed(seed, "acc-agent") +
           static_cast<std::uint64_t>(sw.id())) {
  assert(!cfg_.state.include_incast && !cfg_.state.include_flow_ratio &&
         "ACC's state is the basic set");
  rl::DdqnConfig ddqn = cfg_.ddqn;
  ddqn.input_size = state_builder_.state_size();
  ddqn.head_sizes = cfg_.action_space.head_sizes();
  ddqn.seed = sim::derive_seed(seed, "acc-ddqn");
  learner_ = std::make_unique<rl::DdqnAgent>(ddqn, std::move(global_replay),
                                             sw.id());
  current_config_ = sw_.port(0).ecn_config(0);
}

void AccAgent::tick() {
  const core::NcmSnapshot snap = ncm_.sample();
  state_builder_.push_slot(snap, current_config_);
  const std::vector<double> state = state_builder_.state();

  // Reward the previous action and store the transition in the (global)
  // replay; DDQN is off-policy so it can learn from everyone's experience.
  if (pending_.has_value()) {
    const double reward = core::compute_reward(cfg_.reward, snap);
    reward_stats_.add(reward);
    learner_->observe(rl::DqnTransition{.state = std::move(pending_->state),
                                        .actions = std::move(pending_->actions),
                                        .reward = reward,
                                        .next_state = state});
    pending_.reset();
  }

  if (cfg_.training) {
    for (std::int32_t i = 0; i < cfg_.train_every; ++i) {
      learner_->train_step();
    }
  }

  ++steps_;
  const std::vector<std::int32_t> actions =
      cfg_.training ? learner_->act(state, rng_) : learner_->act_greedy(state);
  current_config_ = cfg_.action_space.to_config(actions);
  sw_.install_ecn(current_config_);
  if (cfg_.training) {
    pending_ = Pending{.state = state, .actions = actions};
  }
}

// ---------------------------------------------------------------------------
// AccController
// ---------------------------------------------------------------------------

AccController::AccController(sim::Scheduler& sched,
                             std::span<net::SwitchDevice* const> switches,
                             const AccControllerConfig& cfg, std::uint64_t seed)
    : sched_(sched),
      cfg_(cfg),
      replay_(std::make_shared<rl::ReplayBuffer>(cfg.replay_capacity)) {
  agents_.reserve(switches.size());
  for (net::SwitchDevice* sw : switches) {
    agents_.push_back(
        std::make_unique<AccAgent>(sched, *sw, cfg.agent, seed, replay_));
  }
}

void AccController::start() {
  if (running_) return;
  running_ = true;
  next_tick_ = sched_.schedule_in(cfg_.start_delay + cfg_.agent.tuning_interval,
                                  [this] { tick_all(); }, "rl.acc-tick");
}

void AccController::stop() {
  running_ = false;
  if (next_tick_.valid()) {
    sched_.cancel(next_tick_);
    next_tick_ = sim::EventId{};
  }
}

void AccController::set_training(bool training) {
  for (auto& a : agents_) a->set_training(training);
}

void AccController::tick_all() {
  if (!running_) return;
  for (auto& a : agents_) a->tick();
  next_tick_ = sched_.schedule_in(cfg_.agent.tuning_interval,
                                  [this] { tick_all(); }, "rl.acc-tick");
}

double AccController::mean_reward() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& a : agents_) {
    if (a->reward_stats().count() > 0) {
      total += a->reward_stats().mean();
      ++n;
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

std::size_t AccController::replay_exchange_bytes() const {
  std::size_t total = 0;
  for (const auto& a : agents_) {
    total += replay_->bytes_from_others(a->learner().agent_id());
  }
  return total;
}

bool AccController::install_weights(std::span<const double> weights) {
  bool ok = true;
  for (auto& a : agents_) ok = a->learner().set_weights(weights) && ok;
  return ok;
}

void AccAgent::save_state(sim::ByteSink& out) const {
  learner_->save_state(out);
  sim::save_rng(out, rng_);
  out.u8(pending_.has_value() ? 1 : 0);
  if (pending_.has_value()) {
    out.f64_vec(pending_->state);
    out.i32_vec(pending_->actions);
  }
  out.i64(current_config_.kmin_bytes);
  out.i64(current_config_.kmax_bytes);
  out.f64(current_config_.pmax);
  out.i64(steps_);
  reward_stats_.save_state(out);
  state_builder_.save_state(out);
  ncm_.save_state(out);
}

bool AccAgent::load_state(sim::ByteSource& in) {
  if (!learner_->load_state(in)) return false;
  if (!sim::load_rng(in, rng_)) return false;
  const bool has_pending = in.u8() != 0;
  pending_.reset();
  if (has_pending) {
    Pending p;
    p.state = in.f64_vec();
    p.actions = in.i32_vec();
    pending_ = std::move(p);
  }
  current_config_.kmin_bytes = in.i64();
  current_config_.kmax_bytes = in.i64();
  current_config_.pmax = in.f64();
  steps_ = in.i64();
  if (!reward_stats_.load_state(in)) return false;
  if (!state_builder_.load_state(in)) return false;
  if (!ncm_.load_state(in)) return false;
  return in.ok();
}

void AccController::save_state(sim::ByteSink& out) const {
  out.u64(agents_.size());
  replay_->save_state(out);
  for (const auto& a : agents_) a->save_state(out);
}

bool AccController::load_state(sim::ByteSource& in) {
  const std::uint64_t count = in.u64();
  if (!in.ok() || count != agents_.size()) return false;
  if (!replay_->load_state(in)) return false;
  for (auto& a : agents_) {
    if (!a->load_state(in)) return false;
  }
  return true;
}

}  // namespace pet::acc
