#include "transport/dcqcn.hpp"

#include <algorithm>
#include <cassert>

namespace pet::transport {

namespace {
[[nodiscard]] sim::Time pacing_gap(std::int64_t wire_bytes, double rate_bps) {
  return sim::Time(static_cast<std::int64_t>(
      static_cast<double>(wire_bytes) * 8.0 * 1e12 / rate_bps));
}
}  // namespace

// ---------------------------------------------------------------------------
// DcqcnSender (RP)
// ---------------------------------------------------------------------------

DcqcnSender::DcqcnSender(sim::Scheduler& sched, net::HostDevice& host,
                         const FlowSpec& spec, const DcqcnConfig& cfg)
    : sched_(sched),
      host_(host),
      spec_(spec),
      cfg_(cfg),
      remaining_(spec.size_bytes),
      next_emit_(sched.now()),
      line_rate_bps_(static_cast<double>(host.nic_rate().bps())),
      min_rate_bps_(line_rate_bps_ * cfg.min_rate_fraction),
      rate_bps_(line_rate_bps_),
      target_bps_(line_rate_bps_) {
  assert(spec.size_bytes > 0);
  arm_alpha_timer();
  arm_increase_timer();
  host_.register_source(this);
  registered_ = true;
}

DcqcnSender::~DcqcnSender() { stop(); }

void DcqcnSender::stop() {
  if (alpha_ev_.valid()) sched_.cancel(alpha_ev_);
  if (increase_ev_.valid()) sched_.cancel(increase_ev_);
  if (deregister_ev_.valid()) sched_.cancel(deregister_ev_);
  alpha_ev_ = sim::EventId{};
  increase_ev_ = sim::EventId{};
  deregister_ev_ = sim::EventId{};
  if (registered_) {
    host_.deregister_source(this);
    registered_ = false;
  }
}

net::Packet DcqcnSender::emit(sim::Time now) {
  assert(remaining_ > 0);
  const std::int32_t payload = static_cast<std::int32_t>(
      std::min<std::int64_t>(cfg_.mtu_bytes, remaining_));
  remaining_ -= payload;

  net::Packet pkt;
  pkt.flow_id = spec_.id;
  pkt.src = spec_.src;
  pkt.dst = spec_.dst;
  pkt.type = net::PacketType::kData;
  pkt.payload_bytes = payload;
  pkt.size_bytes = payload + cfg_.header_bytes;
  pkt.seq = seq_++;
  pkt.ecn_capable = true;
  pkt.last_of_flow = (remaining_ == 0);

  next_emit_ = now + pacing_gap(pkt.size_bytes, rate_bps_);

  // RP byte counter: an increase event per cfg_.byte_counter bytes sent.
  bytes_counted_ += pkt.size_bytes;
  if (bytes_counted_ >= cfg_.byte_counter) {
    bytes_counted_ -= cfg_.byte_counter;
    ++byte_stage_;
    do_increase();
  }

  if (remaining_ == 0) {
    // Emission done: timers and NIC registration are no longer needed.
    // Deregistration is deferred to a zero-delay event because emit() is
    // called from inside the NIC scheduling loop.
    if (alpha_ev_.valid()) sched_.cancel(alpha_ev_);
    if (increase_ev_.valid()) sched_.cancel(increase_ev_);
    alpha_ev_ = sim::EventId{};
    increase_ev_ = sim::EventId{};
    deregister_ev_ = sched_.schedule_in(
        sim::Time(0),
        [this] {
          deregister_ev_ = sim::EventId{};
          if (registered_) {
            host_.deregister_source(this);
            registered_ = false;
          }
        },
        "transport.deregister");
  }
  return pkt;
}

void DcqcnSender::on_cnp(sim::Time now) {
  ++cnps_received_;
  cut_rate(now);
}

void DcqcnSender::cut_rate(sim::Time /*now*/) {
  // Zhu et al.: cut with the *current* alpha, then push alpha toward 1.
  target_bps_ = rate_bps_;
  rate_bps_ *= (1.0 - alpha_ / 2.0);
  alpha_ = (1.0 - cfg_.gain) * alpha_ + cfg_.gain;
  clamp_rates();
  timer_stage_ = 0;
  byte_stage_ = 0;
  bytes_counted_ = 0;
  arm_alpha_timer();
  arm_increase_timer();
}

void DcqcnSender::do_increase() {
  const std::int32_t stage = timer_stage_ + byte_stage_;
  if (stage <= cfg_.fast_recovery_stages) {
    // Fast recovery toward the pre-cut target.
  } else if (stage <= 2 * cfg_.fast_recovery_stages) {
    target_bps_ += cfg_.rate_ai_bps;  // additive probe
  } else {
    target_bps_ += cfg_.rate_hai_bps;  // hyper increase
  }
  rate_bps_ = (target_bps_ + rate_bps_) / 2.0;
  clamp_rates();
}

void DcqcnSender::clamp_rates() {
  rate_bps_ = std::clamp(rate_bps_, min_rate_bps_, line_rate_bps_);
  target_bps_ = std::clamp(target_bps_, min_rate_bps_, line_rate_bps_);
}

void DcqcnSender::arm_alpha_timer() {
  if (alpha_ev_.valid()) sched_.cancel(alpha_ev_);
  alpha_ev_ = sched_.schedule_in(
      cfg_.alpha_timer,
      [this] {
        alpha_ *= (1.0 - cfg_.gain);
        arm_alpha_timer();
      },
      "transport.alpha");
}

void DcqcnSender::arm_increase_timer() {
  if (increase_ev_.valid()) sched_.cancel(increase_ev_);
  increase_ev_ = sched_.schedule_in(
      cfg_.increase_timer,
      [this] {
        ++timer_stage_;
        do_increase();
        arm_increase_timer();
      },
      "transport.increase");
}

// ---------------------------------------------------------------------------
// RdmaTransport
// ---------------------------------------------------------------------------

RdmaTransport::RdmaTransport(net::Network& net, const DcqcnConfig& cfg,
                             FctRecorder* recorder)
    : net_(net), cfg_(cfg), recorder_(recorder) {
  for (net::HostId h = 0; h < net_.num_hosts(); ++h) {
    net_.host(h).set_app(this);
  }
}

net::FlowId RdmaTransport::start_flow(FlowSpec spec) {
  assert(spec.src != spec.dst);
  if (spec.start_time == sim::Time::zero()) {
    spec.start_time = net_.scheduler().now();
  }
  if (spec.id == 0) spec.id = next_flow_id_++;
  ++flows_started_;
  RxState rx;
  rx.expected = spec.size_bytes;
  rx.spec = spec;
  receivers_.emplace(spec.id, rx);
  senders_.emplace(spec.id,
                   std::make_unique<DcqcnSender>(net_.scheduler(),
                                                 net_.host(spec.src), spec,
                                                 cfg_));
  return spec.id;
}

DcqcnSender* RdmaTransport::find_sender(net::FlowId id) {
  const auto it = senders_.find(id);
  return it == senders_.end() ? nullptr : it->second.get();
}

void RdmaTransport::on_receive(const net::Packet& pkt) {
  const sim::Time now = net_.scheduler().now();
  switch (pkt.type) {
    case net::PacketType::kData: {
      const auto it = receivers_.find(pkt.flow_id);
      if (it == receivers_.end()) return;  // stale packet of a finished flow
      RxState& rx = it->second;
      if (recorder_ != nullptr) recorder_->record_latency(now - pkt.sent_at);
      // NP: echo congestion back to the sender, at most one CNP per window.
      if (pkt.ce_marked && now - rx.last_cnp >= cfg_.cnp_interval) {
        rx.last_cnp = now;
        net::Packet cnp;
        cnp.flow_id = pkt.flow_id;
        cnp.src = pkt.dst;
        cnp.dst = pkt.src;
        cnp.type = net::PacketType::kCnp;
        cnp.size_bytes = net::kControlPacketBytes;
        cnp.ecn_capable = false;
        net_.host(pkt.dst).send_control(cnp);
        ++cnps_sent_;
      }
      rx.received += pkt.payload_bytes;
      if (rx.received >= rx.expected) complete_flow(pkt.flow_id, rx);
      break;
    }
    case net::PacketType::kCnp: {
      const auto it = senders_.find(pkt.flow_id);
      if (it != senders_.end()) it->second->on_cnp(now);
      break;
    }
    default:
      break;  // ACKs unused in the RDMA-write model; PFC handled by devices
  }
}

void RdmaTransport::complete_flow(net::FlowId id, RxState& rx) {
  if (recorder_ != nullptr) {
    recorder_->record_flow(rx.spec, net_.scheduler().now());
  }
  ++flows_completed_;
  if (const auto it = senders_.find(id); it != senders_.end()) {
    it->second->stop();
    senders_.erase(it);
  }
  receivers_.erase(id);
}

}  // namespace pet::transport
