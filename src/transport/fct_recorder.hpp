#pragma once
// Collects flow completion times and per-packet one-way latency samples.
// Latency percentiles use a fixed-size uniform reservoir so memory stays
// bounded on long runs.

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "transport/flow.hpp"

namespace pet::transport {

class FctRecorder {
 public:
  explicit FctRecorder(std::uint64_t seed = 0x5151,
                       std::size_t latency_reservoir = 1 << 16)
      : rng_(sim::derive_seed(seed, "fct-reservoir")),
        reservoir_capacity_(latency_reservoir) {
    // Fill-phase push_backs must never reallocate mid-run: the per-packet
    // record_latency call sits on the DES hot path.
    latency_reservoir_.reserve(reservoir_capacity_);
  }

  void record_flow(const FlowSpec& spec, sim::Time finish) {
    records_.push_back(FctRecord{spec, finish});
  }

  void record_latency(sim::Time sample) {
    latency_stats_.add(sample.us());
    ++latency_seen_;
    if (latency_reservoir_.size() < reservoir_capacity_) {
      latency_reservoir_.push_back(sample.us());
    } else {
      const std::uint64_t j = rng_.uniform_int(latency_seen_);
      if (j < reservoir_capacity_) latency_reservoir_[j] = sample.us();
    }
  }

  [[nodiscard]] const std::vector<FctRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const sim::RunningStats& latency_stats() const {
    return latency_stats_;
  }
  /// Latency percentile (us) from the reservoir sample.
  [[nodiscard]] double latency_percentile(double pct) const {
    return sim::percentile(latency_reservoir_, pct);
  }

  /// Completions whose *finish* time falls in [from, to) — used by the
  /// convergence and robustness time-series figures.
  [[nodiscard]] std::vector<FctRecord> completions_between(sim::Time from,
                                                           sim::Time to) const;

  /// Drop latency samples only (FCT records stay); used when a measurement
  /// window opens after a warmup phase.
  void reset_latency() {
    latency_stats_ = {};
    latency_reservoir_.clear();
    latency_seen_ = 0;
  }

  void clear() {
    records_.clear();
    latency_stats_ = {};
    latency_reservoir_.clear();
    latency_seen_ = 0;
  }

 private:
  std::vector<FctRecord> records_;
  sim::RunningStats latency_stats_;
  std::vector<double> latency_reservoir_;
  sim::Rng rng_;
  std::size_t reservoir_capacity_;
  std::uint64_t latency_seen_ = 0;
};

}  // namespace pet::transport
