#pragma once
// Flow descriptors and completion records shared by the transport,
// workload generator and experiment harness.

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pet::transport {

/// Flows whose cumulative size exceeds this are elephants (Section 4.2.1,
/// following the DevoFlow rule the paper cites).
inline constexpr std::int64_t kElephantThresholdBytes = 1'000'000;

struct FlowSpec {
  net::FlowId id = 0;
  net::HostId src = -1;
  net::HostId dst = -1;
  std::int64_t size_bytes = 0;
  sim::Time start_time;

  [[nodiscard]] bool is_elephant() const {
    return size_bytes > kElephantThresholdBytes;
  }
};

struct FctRecord {
  FlowSpec spec;
  sim::Time finish_time;

  [[nodiscard]] sim::Time fct() const { return finish_time - spec.start_time; }
};

}  // namespace pet::transport
