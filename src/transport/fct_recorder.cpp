#include "transport/fct_recorder.hpp"

namespace pet::transport {

std::vector<FctRecord> FctRecorder::completions_between(sim::Time from,
                                                        sim::Time to) const {
  std::vector<FctRecord> out;
  for (const auto& r : records_) {
    if (r.finish_time >= from && r.finish_time < to) out.push_back(r);
  }
  return out;
}

}  // namespace pet::transport
