#pragma once
// DCQCN (Zhu et al., SIGCOMM'15) — the end-to-end congestion control every
// scheme in the paper runs on. Switches CE-mark via RED/ECN (CP), receivers
// send rate-limited CNPs on marked arrivals (NP), and senders run the
// alpha/rate state machine with fast-recovery / additive / hyper increase
// stages (RP).

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/flow_source.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "transport/fct_recorder.hpp"
#include "transport/flow.hpp"

namespace pet::transport {

struct DcqcnConfig {
  std::int32_t mtu_bytes = 1000;    // payload per data packet
  std::int32_t header_bytes = 48;   // Eth+IP+UDP+IB BTH overhead on the wire
  sim::Time cnp_interval = sim::microseconds(50);  // NP: min CNP spacing
  double gain = 1.0 / 16.0;                        // g, alpha EWMA gain
  sim::Time alpha_timer = sim::microseconds(55);   // alpha decay period
  sim::Time increase_timer = sim::microseconds(300);  // RP increase period
  std::int64_t byte_counter = 10'000'000;  // bytes per increase event
  std::int32_t fast_recovery_stages = 5;   // F
  double rate_ai_bps = 40e6;               // additive increase step
  double rate_hai_bps = 400e6;             // hyper increase step
  double min_rate_fraction = 1e-3;         // floor as a fraction of line rate
};

/// Sender-side (RP) state machine; one per active flow. Implements
/// FlowSource so the host NIC scheduler paces it at the DCQCN rate.
class DcqcnSender final : public net::FlowSource {
 public:
  DcqcnSender(sim::Scheduler& sched, net::HostDevice& host,
              const FlowSpec& spec, const DcqcnConfig& cfg);
  ~DcqcnSender() override;

  DcqcnSender(const DcqcnSender&) = delete;
  DcqcnSender& operator=(const DcqcnSender&) = delete;

  // --- FlowSource -----------------------------------------------------------
  [[nodiscard]] bool has_data() const override { return remaining_ > 0; }
  [[nodiscard]] sim::Time next_emit_time() const override { return next_emit_; }
  [[nodiscard]] net::Packet emit(sim::Time now) override;

  /// NP feedback arrived for this flow.
  void on_cnp(sim::Time now);

  /// Cancel timers and detach from the NIC (flow teardown).
  void stop();

  [[nodiscard]] const FlowSpec& spec() const { return spec_; }
  [[nodiscard]] bool emission_complete() const { return remaining_ == 0; }
  [[nodiscard]] double current_rate_bps() const { return rate_bps_; }
  [[nodiscard]] double target_rate_bps() const { return target_bps_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::int64_t cnps_received() const { return cnps_received_; }

 private:
  void cut_rate(sim::Time now);
  void do_increase();
  void arm_alpha_timer();
  void arm_increase_timer();
  void clamp_rates();

  sim::Scheduler& sched_;
  net::HostDevice& host_;
  FlowSpec spec_;
  const DcqcnConfig& cfg_;

  std::int64_t remaining_;
  std::uint32_t seq_ = 0;
  sim::Time next_emit_;

  double line_rate_bps_;
  double min_rate_bps_;
  double rate_bps_;    // Rc
  double target_bps_;  // Rt
  double alpha_ = 1.0;

  std::int32_t timer_stage_ = 0;
  std::int32_t byte_stage_ = 0;
  std::int64_t bytes_counted_ = 0;
  std::int64_t cnps_received_ = 0;

  sim::EventId alpha_ev_;
  sim::EventId increase_ev_;
  sim::EventId deregister_ev_;
  bool registered_ = false;
};

/// Whole-fabric RoCE transport: owns all sender/receiver flow state and is
/// installed as the HostApp on every host.
class RdmaTransport final : public net::HostApp {
 public:
  RdmaTransport(net::Network& net, const DcqcnConfig& cfg,
                FctRecorder* recorder);

  /// Begin emitting a flow now (spec.start_time is stamped with now if
  /// zero; spec.id of 0 means "allocate one"). Returns the flow id.
  net::FlowId start_flow(FlowSpec spec);

  void on_receive(const net::Packet& pkt) override;

  [[nodiscard]] const DcqcnConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t active_flows() const { return senders_.size(); }
  [[nodiscard]] std::int64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::int64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::int64_t cnps_sent() const { return cnps_sent_; }

  /// Test hook: sender state for a live flow (nullptr once completed).
  [[nodiscard]] DcqcnSender* find_sender(net::FlowId id);

 private:
  struct RxState {
    std::int64_t expected = 0;
    std::int64_t received = 0;
    sim::Time last_cnp = sim::Time(-1'000'000'000'000LL);
    FlowSpec spec;
  };

  void complete_flow(net::FlowId id, RxState& rx);

  net::Network& net_;
  DcqcnConfig cfg_;
  FctRecorder* recorder_;
  std::unordered_map<net::FlowId, std::unique_ptr<DcqcnSender>> senders_;
  std::unordered_map<net::FlowId, RxState> receivers_;
  std::int64_t flows_started_ = 0;
  std::int64_t flows_completed_ = 0;
  std::int64_t cnps_sent_ = 0;
  net::FlowId next_flow_id_ = 1;
};

}  // namespace pet::transport
